/**
 * @file
 * Adversarial flag vectors against the `protect` subcommand parser
 * (protect/options.hh) — the exact function the CLI calls, factored out
 * so malformed input can be proven to fail *before* any simulation
 * state exists. parseProtectCli returning false is what smtavf_cli maps
 * to exit code 2; the parser itself must never crash, never accept an
 * internally inconsistent option set, and always leave a diagnostic.
 *
 * Directed cases pin every rejection path; the randomized sweep throws
 * thousands of seeded token soups at the parser and checks the
 * postcondition invariants on whatever it accepts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.hh"
#include "protect/options.hh"

namespace smtavf
{
namespace
{

using Args = std::vector<std::string>;

/** Parse expecting rejection; the diagnostic must name the problem. */
void
expectReject(const Args &args, const std::string &err_substr)
{
    ProtectCliOptions out;
    std::string err;
    EXPECT_FALSE(parseProtectCli(args, out, err)) << "accepted bad args";
    EXPECT_NE(err.find(err_substr), std::string::npos)
        << "diagnostic '" << err << "' does not mention '" << err_substr
        << "'";
}

ProtectCliOptions
expectAccept(const Args &args)
{
    ProtectCliOptions out;
    std::string err;
    EXPECT_TRUE(parseProtectCli(args, out, err)) << err;
    EXPECT_TRUE(err.empty()) << "diagnostic on success: " << err;
    return out;
}

TEST(ProtectCliFuzz, MalformedNumbersAreRejectedNotTruncated)
{
    for (const char *bad : {"", "x", "12x", "-3", "3.5", "0x10", " 4",
                            "99999999999999999999999"}) {
        SCOPED_TRACE(std::string("value '") + bad + "'");
        expectReject({"--explore=beam", "--beam-width", bad}, "--beam-width");
        expectReject({"--explore=beam", "--generations", bad},
                     "--generations");
        expectReject({"--explore=beam", "--budget", bad}, "--budget");
        expectReject({"--scrub-interval", bad}, "--scrub-interval");
        expectReject({"--seed", bad}, "--seed");
        expectReject({"--instructions", bad}, "--instructions");
        expectReject({"--jobs", bad}, "--jobs");
    }
}

TEST(ProtectCliFuzz, MissingValuesAreRejected)
{
    for (const char *flag :
         {"--mix", "--policy", "--scheme", "--assign", "--journal",
          "--scrub-interval", "--seed", "--instructions", "--jobs",
          "--depth"}) {
        SCOPED_TRACE(flag);
        expectReject({flag}, flag);
    }
    expectReject({"--explore=beam", "--beam-width"}, "--beam-width");
    expectReject({"--explore=beam", "--generations"}, "--generations");
    expectReject({"--explore=beam", "--budget"}, "--budget");
}

TEST(ProtectCliFuzz, ZeroAndRangeViolationsAreRejected)
{
    expectReject({"--explore=beam", "--beam-width", "0"}, "--beam-width");
    expectReject({"--depth", "0"}, "--depth");
    expectReject({"--jobs", "0"}, "--jobs");
    expectReject({"--scrub-interval", "0"}, "--scrub-interval");
    expectReject({"--scrub-interval", "1073741825"}, "--scrub-interval");
    // 2^30 exactly is the inclusive ceiling.
    auto ok = expectAccept({"--scrub-interval", "1073741824"});
    EXPECT_EQ(ok.scrubInterval, std::uint64_t{1} << 30);
    // --generations 0 is legal: seeds only, no expansion.
    auto g0 = expectAccept({"--explore=beam", "--generations", "0"});
    EXPECT_EQ(g0.generations, 0u);
}

TEST(ProtectCliFuzz, UnknownModesAndFlagsAreRejected)
{
    expectReject({"--explore=bogus"}, "bogus");
    expectReject({"--explore="}, "explore mode");
    expectReject({"--explore=Beam"}, "Beam");    // modes are lower-case
    expectReject({"--explore=beam "}, "beam ");  // no trailing junk
    expectReject({"--frobnicate"}, "--frobnicate");
    expectReject({"--beamwidth", "4"}, "--beamwidth");
    expectReject({"protect"}, "protect"); // subcommand word not re-eaten
}

TEST(ProtectCliFuzz, CrossFlagConstraintsAreEnforced)
{
    expectReject({"--explore", "--scheme", "parity"}, "--scheme");
    expectReject({"--explore=beam", "--assign", "iq=parity"}, "--assign");
    expectReject({"--beam-width", "4"}, "--explore=beam");
    expectReject({"--explore", "--beam-width", "4"}, "--explore=beam");
    expectReject({"--explore=prefix", "--generations", "2"},
                 "--explore=beam");
    expectReject({"--budget", "10"}, "--explore=beam");
    expectReject({"--journal", "j.journal"}, "--explore=beam");
    expectReject({"--explore", "--journal", "j.journal"}, "--explore=beam");
    expectReject({"--explore=beam", "--resume"}, "--journal");
    expectReject({"--resume"}, "--journal");
    // Constraint checks run after the whole vector: order must not matter.
    expectReject({"--scheme", "parity", "--explore=beam"}, "--scheme");
    expectReject({"--generations", "2", "--explore=prefix"},
                 "--explore=beam");
}

TEST(ProtectCliFuzz, WellFormedVectorsParse)
{
    auto beam = expectAccept({"--mix", "2ctx-mix-A", "--explore=beam",
                              "--beam-width", "4", "--generations", "2",
                              "--budget", "100", "--journal", "b.journal",
                              "--resume", "--depth", "3", "--jobs", "2",
                              "--csv"});
    EXPECT_TRUE(beam.explore);
    EXPECT_EQ(beam.exploreMode, ExploreMode::Beam);
    EXPECT_EQ(beam.beamWidth, 4u);
    EXPECT_EQ(beam.generations, 2u);
    EXPECT_EQ(beam.evalBudget, 100u);
    EXPECT_EQ(beam.journalPath, "b.journal");
    EXPECT_TRUE(beam.resume);
    EXPECT_TRUE(beam.depthSet);
    EXPECT_EQ(beam.depth, 3u);
    EXPECT_TRUE(beam.csv);

    auto prefix = expectAccept({"--explore", "--depth", "2"});
    EXPECT_EQ(prefix.exploreMode, ExploreMode::Prefix);

    auto single = expectAccept({"--assign", "iq=secded+scrub@5000",
                                "--assign", "rob=parity"});
    EXPECT_FALSE(single.explore);
    EXPECT_EQ(single.assignSpec, "iq=secded+scrub@5000,rob=parity");

    // --help short-circuits: junk after it is never reached, matching the
    // CLI's print-usage-and-exit-0 behavior.
    auto help = expectAccept({"--help", "--beam-width"});
    EXPECT_TRUE(help.help);
}

// Seeded token soup: the parser must never crash, reject with a
// diagnostic, or accept an option set violating its own invariants.
TEST(ProtectCliFuzz, RandomTokenSoupNeverCrashesOrLiesAboutConsistency)
{
    const std::vector<std::string> tokens = {
        "--mix", "--policy", "--instructions", "--seed", "--scheme",
        "--assign", "--scrub-interval", "--explore", "--explore=prefix",
        "--explore=beam", "--explore=bogus", "--depth", "--beam-width",
        "--generations", "--budget", "--journal", "--resume", "--jobs",
        "--csv", "--json", "4ctx-mix-A", "ICOUNT", "parity",
        "iq=secded+scrub@5000", "0", "1", "4", "10000", "1073741824",
        "1073741825", "-1", "12x", "", "99999999999999999999999",
        "b.journal", "--frobnicate", "--explore=", "protect"};

    Rng rng(0x5ee0u);
    unsigned accepted = 0, rejected = 0;
    for (int iter = 0; iter < 5000; ++iter) {
        Args args;
        auto len = rng.uniform(8);
        for (std::uint64_t i = 0; i < len; ++i)
            args.push_back(tokens[rng.uniform(tokens.size())]);

        ProtectCliOptions out;
        std::string err;
        bool ok = parseProtectCli(args, out, err);
        if (!ok) {
            ++rejected;
            EXPECT_FALSE(err.empty())
                << "rejected without a diagnostic: iter " << iter;
            continue;
        }
        ++accepted;
        // Accepted option sets are internally consistent by contract.
        if (out.help)
            continue;
        EXPECT_TRUE(err.empty());
        bool beam = out.explore && out.exploreMode == ExploreMode::Beam;
        if (!beam) {
            EXPECT_TRUE(out.journalPath.empty());
        }
        if (out.resume) {
            EXPECT_FALSE(out.journalPath.empty());
        }
        if (out.explore) {
            EXPECT_TRUE(out.schemeName.empty());
            EXPECT_TRUE(out.assignSpec.empty());
        }
        EXPECT_GE(out.scrubInterval, 1u);
        EXPECT_LE(out.scrubInterval, std::uint64_t{1} << 30);
        EXPECT_GE(out.beamWidth, 1u);
        EXPECT_GE(out.depth, 1u);
    }
    // The soup must actually exercise both outcomes.
    EXPECT_GT(accepted, 100u);
    EXPECT_GT(rejected, 1000u);
}

} // namespace
} // namespace smtavf
