/**
 * @file
 * Adversarial flag vectors against the `protect` subcommand parser
 * (protect/options.hh) — the exact function the CLI calls, factored out
 * so malformed input can be proven to fail *before* any simulation
 * state exists. parseProtectCli returning false is what smtavf_cli maps
 * to exit code 2; the parser itself must never crash, never accept an
 * internally inconsistent option set, and always leave a diagnostic.
 *
 * Directed cases pin every rejection path; the randomized sweep throws
 * thousands of seeded token soups at the parser and checks the
 * postcondition invariants on whatever it accepts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.hh"
#include "protect/options.hh"
#include "sim/experiment.hh"

namespace smtavf
{
namespace
{

using Args = std::vector<std::string>;

/** Parse expecting rejection; the diagnostic must name the problem. */
void
expectReject(const Args &args, const std::string &err_substr)
{
    ProtectCliOptions out;
    std::string err;
    EXPECT_FALSE(parseProtectCli(args, out, err)) << "accepted bad args";
    EXPECT_NE(err.find(err_substr), std::string::npos)
        << "diagnostic '" << err << "' does not mention '" << err_substr
        << "'";
}

ProtectCliOptions
expectAccept(const Args &args)
{
    ProtectCliOptions out;
    std::string err;
    EXPECT_TRUE(parseProtectCli(args, out, err)) << err;
    EXPECT_TRUE(err.empty()) << "diagnostic on success: " << err;
    return out;
}

TEST(ProtectCliFuzz, MalformedNumbersAreRejectedNotTruncated)
{
    for (const char *bad : {"", "x", "12x", "-3", "3.5", "0x10", " 4",
                            "99999999999999999999999"}) {
        SCOPED_TRACE(std::string("value '") + bad + "'");
        expectReject({"--explore=beam", "--beam-width", bad}, "--beam-width");
        expectReject({"--explore=beam", "--generations", bad},
                     "--generations");
        expectReject({"--explore=beam", "--budget", bad}, "--budget");
        expectReject({"--scrub-interval", bad}, "--scrub-interval");
        expectReject({"--seed", bad}, "--seed");
        expectReject({"--instructions", bad}, "--instructions");
        expectReject({"--jobs", bad}, "--jobs");
    }
}

TEST(ProtectCliFuzz, MissingValuesAreRejected)
{
    for (const char *flag :
         {"--mix", "--policy", "--scheme", "--assign", "--journal",
          "--scrub-interval", "--seed", "--instructions", "--jobs",
          "--depth"}) {
        SCOPED_TRACE(flag);
        expectReject({flag}, flag);
    }
    expectReject({"--explore=beam", "--beam-width"}, "--beam-width");
    expectReject({"--explore=beam", "--generations"}, "--generations");
    expectReject({"--explore=beam", "--budget"}, "--budget");
}

TEST(ProtectCliFuzz, ZeroAndRangeViolationsAreRejected)
{
    expectReject({"--explore=beam", "--beam-width", "0"}, "--beam-width");
    expectReject({"--depth", "0"}, "--depth");
    expectReject({"--jobs", "0"}, "--jobs");
    expectReject({"--scrub-interval", "0"}, "--scrub-interval");
    expectReject({"--scrub-interval", "1073741825"}, "--scrub-interval");
    // 2^30 exactly is the inclusive ceiling.
    auto ok = expectAccept({"--scrub-interval", "1073741824"});
    EXPECT_EQ(ok.scrubInterval, std::uint64_t{1} << 30);
    // --generations 0 is legal: seeds only, no expansion.
    auto g0 = expectAccept({"--explore=beam", "--generations", "0"});
    EXPECT_EQ(g0.generations, 0u);
}

TEST(ProtectCliFuzz, PratFlagsRejectMalformedAndMisboundValues)
{
    // Malformed numbers, never truncated.
    for (const char *bad : {"", "x", "12x", "-3", "3.5",
                            "99999999999999999999999"}) {
        SCOPED_TRACE(std::string("value '") + bad + "'");
        expectReject({"--policy", "PRAT", "--prat-epoch", bad},
                     "--prat-epoch");
        expectReject({"--policy", "PRAT", "--prat-cap", bad}, "--prat-cap");
    }
    expectReject({"--policy", "PRAT", "--prat-epoch"}, "--prat-epoch");
    expectReject({"--policy", "PRAT", "--prat-cap"}, "--prat-cap");
    // A zero epoch would never refresh the measured correction.
    expectReject({"--policy", "PRAT", "--prat-epoch", "0"}, "--prat-epoch");
    expectReject({"--policy", "PRAT", "--prat-epoch", "1073741825"},
                 "--prat-epoch");
    expectReject({"--policy", "PRAT", "--prat-cap", "1048577"},
                 "--prat-cap");
    // Inclusive ceilings parse; cap 0 = the derived RAT default.
    auto ok = expectAccept({"--policy", "PRAT", "--prat-epoch",
                            "1073741824", "--prat-cap", "1048576"});
    EXPECT_EQ(ok.pratEpoch, std::uint64_t{1} << 30);
    EXPECT_EQ(ok.pratCap, std::uint64_t{1} << 20);
    auto defaults = expectAccept({"--policy", "PRAT", "--prat-cap", "0"});
    EXPECT_EQ(defaults.pratCap, 0u);

    // The PRAT knobs bind to the PRAT policy; order must not matter.
    expectReject({"--prat-epoch", "512"}, "--policy PRAT");
    expectReject({"--prat-cap", "12"}, "--policy PRAT");
    expectReject({"--policy", "RAT", "--prat-epoch", "512"},
                 "--policy PRAT");
    expectReject({"--prat-cap", "12", "--policy", "ICOUNT"},
                 "--policy PRAT");
    expectReject({"--policy", "bogus", "--prat-epoch", "512"},
                 "--policy PRAT");
}

TEST(ProtectCliFuzz, UnknownModesAndFlagsAreRejected)
{
    expectReject({"--explore=bogus"}, "bogus");
    expectReject({"--explore="}, "explore mode");
    expectReject({"--explore=Beam"}, "Beam");    // modes are lower-case
    expectReject({"--explore=beam "}, "beam ");  // no trailing junk
    expectReject({"--frobnicate"}, "--frobnicate");
    expectReject({"--beamwidth", "4"}, "--beamwidth");
    expectReject({"protect"}, "protect"); // subcommand word not re-eaten
}

TEST(ProtectCliFuzz, CrossFlagConstraintsAreEnforced)
{
    expectReject({"--explore", "--scheme", "parity"}, "--scheme");
    expectReject({"--explore=beam", "--assign", "iq=parity"}, "--assign");
    expectReject({"--beam-width", "4"}, "--explore=beam");
    expectReject({"--explore", "--beam-width", "4"}, "--explore=beam");
    expectReject({"--explore=prefix", "--generations", "2"},
                 "--explore=beam");
    expectReject({"--budget", "10"}, "--explore=beam");
    expectReject({"--journal", "j.journal"}, "--explore=beam");
    expectReject({"--explore", "--journal", "j.journal"}, "--explore=beam");
    expectReject({"--explore=beam", "--resume"}, "--journal");
    expectReject({"--resume"}, "--journal");
    // Constraint checks run after the whole vector: order must not matter.
    expectReject({"--scheme", "parity", "--explore=beam"}, "--scheme");
    expectReject({"--generations", "2", "--explore=prefix"},
                 "--explore=beam");
}

TEST(ProtectCliFuzz, WellFormedVectorsParse)
{
    auto beam = expectAccept({"--mix", "2ctx-mix-A", "--explore=beam",
                              "--beam-width", "4", "--generations", "2",
                              "--budget", "100", "--journal", "b.journal",
                              "--resume", "--depth", "3", "--jobs", "2",
                              "--csv"});
    EXPECT_TRUE(beam.explore);
    EXPECT_EQ(beam.exploreMode, ExploreMode::Beam);
    EXPECT_EQ(beam.beamWidth, 4u);
    EXPECT_EQ(beam.generations, 2u);
    EXPECT_EQ(beam.evalBudget, 100u);
    EXPECT_EQ(beam.journalPath, "b.journal");
    EXPECT_TRUE(beam.resume);
    EXPECT_TRUE(beam.depthSet);
    EXPECT_EQ(beam.depth, 3u);
    EXPECT_TRUE(beam.csv);

    auto prefix = expectAccept({"--explore", "--depth", "2"});
    EXPECT_EQ(prefix.exploreMode, ExploreMode::Prefix);

    auto single = expectAccept({"--assign", "iq=secded+scrub@5000",
                                "--assign", "rob=parity"});
    EXPECT_FALSE(single.explore);
    EXPECT_EQ(single.assignSpec, "iq=secded+scrub@5000,rob=parity");

    // --help short-circuits: junk after it is never reached, matching the
    // CLI's print-usage-and-exit-0 behavior.
    auto help = expectAccept({"--help", "--beam-width"});
    EXPECT_TRUE(help.help);
}

// Seeded token soup: the parser must never crash, reject with a
// diagnostic, or accept an option set violating its own invariants.
TEST(ProtectCliFuzz, RandomTokenSoupNeverCrashesOrLiesAboutConsistency)
{
    const std::vector<std::string> tokens = {
        "--mix", "--policy", "--instructions", "--seed", "--scheme",
        "--assign", "--scrub-interval", "--explore", "--explore=prefix",
        "--explore=beam", "--explore=bogus", "--depth", "--beam-width",
        "--generations", "--budget", "--journal", "--resume", "--jobs",
        "--csv", "--json", "4ctx-mix-A", "ICOUNT", "parity",
        "iq=secded+scrub@5000", "0", "1", "4", "10000", "1073741824",
        "1073741825", "-1", "12x", "", "99999999999999999999999",
        "b.journal", "--frobnicate", "--explore=", "protect",
        "--prat-epoch", "--prat-cap", "PRAT", "RAT", "4096", "1048577"};

    Rng rng(0x5ee0u);
    unsigned accepted = 0, rejected = 0;
    for (int iter = 0; iter < 5000; ++iter) {
        Args args;
        auto len = rng.uniform(8);
        for (std::uint64_t i = 0; i < len; ++i)
            args.push_back(tokens[rng.uniform(tokens.size())]);

        ProtectCliOptions out;
        std::string err;
        bool ok = parseProtectCli(args, out, err);
        if (!ok) {
            ++rejected;
            EXPECT_FALSE(err.empty())
                << "rejected without a diagnostic: iter " << iter;
            continue;
        }
        ++accepted;
        // Accepted option sets are internally consistent by contract.
        if (out.help)
            continue;
        EXPECT_TRUE(err.empty());
        bool beam = out.explore && out.exploreMode == ExploreMode::Beam;
        if (!beam) {
            EXPECT_TRUE(out.journalPath.empty());
        }
        if (out.resume) {
            EXPECT_FALSE(out.journalPath.empty());
        }
        if (out.explore) {
            EXPECT_TRUE(out.schemeName.empty());
            EXPECT_TRUE(out.assignSpec.empty());
        }
        EXPECT_GE(out.scrubInterval, 1u);
        EXPECT_LE(out.scrubInterval, std::uint64_t{1} << 30);
        EXPECT_GE(out.beamWidth, 1u);
        EXPECT_GE(out.depth, 1u);
        EXPECT_GE(out.pratEpoch, 1u);
        EXPECT_LE(out.pratEpoch, std::uint64_t{1} << 30);
        EXPECT_LE(out.pratCap, std::uint64_t{1} << 20);
        // Anything the parser accepts must survive the downstream
        // MachineConfig validation the CLI applies next — the parser
        // never launders a config validateMsg would kill.
        FetchPolicyKind kind;
        if (parseFetchPolicy(out.policyName, kind)) {
            MachineConfig cfg = table1Config(2);
            cfg.fetchPolicy = kind;
            cfg.pratEpoch = out.pratEpoch;
            cfg.pratCap = static_cast<std::uint32_t>(out.pratCap);
            EXPECT_EQ(cfg.validateMsg(), "")
                << "iter " << iter << " accepted an invalid config";
        }
    }
    // The soup must actually exercise both outcomes.
    EXPECT_GT(accepted, 100u);
    EXPECT_GT(rejected, 1000u);
}

} // namespace
} // namespace smtavf
