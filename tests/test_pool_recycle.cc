/**
 * @file
 * Pool-recycling determinism: DynInstr objects come from a per-core slab
 * pool and are recycled aggressively, so these tests prove that recycled
 * storage can never leak state between instructions or between runs —
 * the result of a simulation is bit-identical no matter how many
 * simulations the process ran before it, and no matter how hard the
 * squash path churned the pool. Run them under
 * -DSMTAVF_SANITIZE=address to also prove the recycler never touches
 * freed storage (the squash-heavy case below exists for exactly that).
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/campaign.hh"
#include "sim/journal.hh"
#include "workload/mixes.hh"

namespace smtavf
{
namespace
{

/** Full-result fingerprint: every field the journal round-trips. */
std::string
resultText(const Experiment &e, const SimResult &r)
{
    return serializeRun(experimentFingerprint(e), r);
}

TEST(PoolRecycle, BackToBackSimulatorsBitIdentical)
{
    auto e = makeExperiment(findMix("2ctx-mix-A"), FetchPolicyKind::Icount,
                            30000);
    auto first = runExperiment(e);
    // The second Simulator starts from a process state the first one
    // warmed (allocator caches, pools constructed and destroyed). Its
    // result must not notice.
    auto second = runExperiment(e);
    EXPECT_EQ(resultText(e, first), resultText(e, second));
}

TEST(PoolRecycle, InterleavedConfigsBitIdentical)
{
    auto a = makeExperiment(findMix("2ctx-mix-A"), FetchPolicyKind::Icount,
                            20000);
    auto b = makeExperiment(findMix("2ctx-mem-A"), FetchPolicyKind::Stall,
                            20000);
    auto a1 = runExperiment(a);
    auto b1 = runExperiment(b);
    auto a2 = runExperiment(a);
    auto b2 = runExperiment(b);
    EXPECT_EQ(resultText(a, a1), resultText(a, a2));
    EXPECT_EQ(resultText(b, b1), resultText(b, b2));
}

/**
 * FLUSH on a memory-bound mix squashes entire in-flight windows on every
 * L2 miss: instructions are returned to the slab pool in bulk mid-run and
 * immediately re-allocated by re-fetch. Two identical runs must still
 * agree bit-for-bit — and under ASan this is the test that walks the
 * recycler's use-after-free surface hardest.
 */
TEST(PoolRecycle, SquashHeavyFlushRunBitIdentical)
{
    auto e = makeExperiment(findMix("4ctx-mem-A"), FetchPolicyKind::Flush,
                            40000);
    e.cfg.seed = 1234;
    auto first = runExperiment(e);
    auto second = runExperiment(e);
    EXPECT_EQ(resultText(e, first), resultText(e, second));
    EXPECT_GT(first.cycles, 0u);
}

} // namespace
} // namespace smtavf
