/**
 * @file
 * Golden-file determinism for the beam-search explorer: a fixed search
 * over the synthetic evaluator (explorer_synthetic.hh, exact dyadics
 * only) must reproduce the committed journal and CSV fixtures under
 * tests/data/ byte for byte. Any change to the search trajectory, the
 * journal wire format, the trace comments, or the CSV layout shows up
 * here as a readable diff instead of a silent behavior change.
 *
 * To bless an intentional change, rerun with SMTAVF_REGEN_GOLDEN=1 and
 * commit the rewritten fixtures alongside the code.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "explorer_synthetic.hh"
#include "protect/explorer.hh"

namespace smtavf
{
namespace
{

constexpr unsigned kSpaceSeed = 2;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << bytes;
}

/** Diff-friendly mismatch report: first differing line, not a byte dump. */
void
expectSameBytes(const std::string &fixture, const std::string &got,
                const std::string &name)
{
    if (got == fixture)
        return;
    std::istringstream a(fixture), b(got);
    std::string la, lb;
    std::size_t line = 0;
    while (true) {
        ++line;
        bool ha = static_cast<bool>(std::getline(a, la));
        bool hb = static_cast<bool>(std::getline(b, lb));
        if (!ha && !hb)
            break;
        if (!ha || !hb || la != lb) {
            ADD_FAILURE() << name << " differs from fixture at line "
                          << line << "\n  fixture: "
                          << (ha ? la : std::string("<eof>"))
                          << "\n  got:     "
                          << (hb ? lb : std::string("<eof>"))
                          << "\nrerun with SMTAVF_REGEN_GOLDEN=1 to bless "
                             "an intentional change";
            return;
        }
    }
    ADD_FAILURE() << name << " differs from fixture (whitespace only?)";
}

// One fixed beam search; journal and CSV must match the committed bytes.
TEST(ExplorerGolden, BeamJournalAndCsvMatchFixtures)
{
    const auto &mix = findMix("2ctx-mix-A");
    ProtectionExplorer explorer(table1Config(mix.contexts), mix,
                                /*budget=*/3000);
    // One worker: journal append order == submission order, so the file
    // is byte-deterministic (the *results* are worker-count invariant —
    // that is BeamProperties.BitIdenticalAcrossWorkerCountsAndOrder).
    CampaignRunner pool(1);

    auto journal_path = ::testing::TempDir() + "beam-golden.journal";
    std::remove(journal_path.c_str());

    BeamOptions opt;
    opt.beamWidth = 3;
    opt.generations = 2;
    opt.maxStructures = 3;
    opt.scrubLadder = {4096, 65536}; // powers of two: exact dyadics
    opt.journalPath = journal_path;
    opt.runFn = [](const Experiment &e, std::size_t) {
        return syntheticExplorerRun(e, kSpaceSeed);
    };
    auto result = explorer.exploreBeam(pool, opt);

    std::string journal = slurp(journal_path);
    std::string csv = result.csv();
    std::remove(journal_path.c_str());
    ASSERT_FALSE(journal.empty());
    ASSERT_FALSE(result.frontier.empty());

    const std::string dir = SMTAVF_TEST_DATA_DIR;
    const std::string journal_fixture = dir + "/beam_golden.journal";
    const std::string csv_fixture = dir + "/beam_golden.csv";

    if (std::getenv("SMTAVF_REGEN_GOLDEN")) {
        spit(journal_fixture, journal);
        spit(csv_fixture, csv);
        GTEST_SKIP() << "regenerated " << journal_fixture << " and "
                     << csv_fixture;
    }

    std::string want_journal = slurp(journal_fixture);
    std::string want_csv = slurp(csv_fixture);
    ASSERT_FALSE(want_journal.empty())
        << "missing fixture " << journal_fixture
        << "; run once with SMTAVF_REGEN_GOLDEN=1";
    ASSERT_FALSE(want_csv.empty())
        << "missing fixture " << csv_fixture
        << "; run once with SMTAVF_REGEN_GOLDEN=1";

    expectSameBytes(want_journal, journal, "journal");
    expectSameBytes(want_csv, csv, "csv");
}

// The fixture journal is loadable: resuming from it replays every run
// (nothing re-simulates) and reports the identical frontier — the
// committed file doubles as a wire-format compatibility check.
TEST(ExplorerGolden, FixtureJournalResumesBitIdentical)
{
    const std::string journal_fixture =
        std::string(SMTAVF_TEST_DATA_DIR) + "/beam_golden.journal";
    auto fixture_bytes = slurp(journal_fixture);
    if (fixture_bytes.empty())
        GTEST_SKIP() << "fixture not generated yet";
    // Resume from a copy: the journal is append-mode, so a live search
    // would add its own trace comments to the committed fixture.
    auto copy = ::testing::TempDir() + "beam-golden-resume.journal";
    spit(copy, fixture_bytes);

    const auto &mix = findMix("2ctx-mix-A");
    ProtectionExplorer explorer(table1Config(mix.contexts), mix,
                                /*budget=*/3000);
    CampaignRunner pool(4);

    auto run = [&](bool resume) {
        BeamOptions opt;
        opt.beamWidth = 3;
        opt.generations = 2;
        opt.maxStructures = 3;
        opt.scrubLadder = {4096, 65536};
        opt.runFn = [resume](const Experiment &e, std::size_t) {
            EXPECT_FALSE(resume)
                << "resume re-simulated " << e.cfg.protection.str();
            return syntheticExplorerRun(e, kSpaceSeed);
        };
        if (resume) {
            opt.journalPath = copy;
            opt.resume = true;
        }
        return explorer.exploreBeam(pool, opt);
    };

    auto fresh = run(/*resume=*/false);
    auto resumed = run(/*resume=*/true);

    EXPECT_EQ(resumed.journalHits, resumed.evaluations);
    ASSERT_EQ(resumed.points.size(), fresh.points.size());
    for (std::size_t i = 0; i < resumed.points.size(); ++i) {
        SCOPED_TRACE(fresh.points[i].label);
        EXPECT_EQ(resumed.points[i].label, fresh.points[i].label);
        EXPECT_EQ(resumed.points[i].residualSer,
                  fresh.points[i].residualSer);
        EXPECT_EQ(resumed.points[i].energyOverhead,
                  fresh.points[i].energyOverhead);
    }
    EXPECT_EQ(resumed.frontier, fresh.frontier);
    EXPECT_EQ(resumed.prunedCount, fresh.prunedCount);
    // The resumed search appends only trace comments, never run lines:
    // every candidate was a replay.
    auto after = slurp(copy);
    ASSERT_EQ(after.substr(0, fixture_bytes.size()), fixture_bytes);
    std::istringstream tail(after.substr(fixture_bytes.size()));
    std::string line;
    while (std::getline(tail, line))
        EXPECT_EQ(line.rfind("# ", 0), 0u) << "unexpected run line: "
                                           << line;
    std::remove(copy.c_str());
}

} // namespace
} // namespace smtavf
