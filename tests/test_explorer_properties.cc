/**
 * @file
 * Property harness for the beam-search protection explorer. The frontier
 * the search reports must be provably right, not just plausible:
 *
 *  (a) no reported frontier point is weakly dominated by ANY evaluated
 *      candidate;
 *  (b) the whole result — points, frontier, trace — is bit-identical for
 *      any worker count, and the frontier is invariant under evaluation
 *      order (it is a set property of the evaluated points);
 *  (c) a beam wide enough to hold the whole space reproduces exhaustive
 *      search exactly on a tiny 3-structure space;
 *  (d) cost-model pruning never removes a point of the exhaustive
 *      frontier (the optimistic-bound proof, tested empirically);
 *  (e) a restarted/resumed search replays journaled candidates instead of
 *      re-simulating them and lands on the bit-identical frontier, even
 *      when only part of the journal survived.
 *
 * Most tests drive the search through the CampaignOptions::runFn seam
 * with a synthetic, simulation-free evaluator, so thousands of candidate
 * evaluations cost microseconds and the exhaustive reference is cheap.
 * The evaluator respects the two invariants the pruning proof leans on —
 * IPC and raw AVF are candidate-independent (the protection overlay never
 * perturbs timing) and residual AVF never falls below each scheme's
 * coverage floor — and uses exact dyadic rationals throughout so every
 * comparison is bit-exact. One test runs the real simulator end-to-end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "explorer_synthetic.hh"
#include "protect/explorer.hh"
#include "sim/journal.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

constexpr std::uint64_t kBudget = 3000;

SimResult
syntheticRun(const Experiment &e, unsigned space_seed)
{
    return syntheticExplorerRun(e, space_seed);
}

struct Setup
{
    MachineConfig cfg;
    WorkloadMix mix;
};

Setup
smallSetup()
{
    const auto &mix = findMix("2ctx-mix-A");
    return {table1Config(mix.contexts), mix};
}

BeamOptions
syntheticOptions(unsigned space_seed)
{
    BeamOptions opt;
    opt.beamWidth = 3;
    opt.generations = 3;
    opt.maxStructures = 4;
    opt.scrubLadder = {4096, 65536}; // powers of two: exact dyadics
    opt.runFn = [space_seed](const Experiment &e, std::size_t) {
        return syntheticRun(e, space_seed);
    };
    return opt;
}

/** Exactly the explorer's point construction, for exhaustive references. */
ProtectionPoint
makePoint(const MachineConfig &base, const ProtectionConfig &prot,
          const SimResult &r)
{
    MachineConfig cfg = base;
    cfg.protection = prot;
    const auto bits = structureBitCapacities(cfg);
    auto cost = protectionCost(cfg);
    ProtectionPoint p;
    p.label = prot.str();
    p.protection = prot;
    p.rawSer = serProxy(r.avf, bits, /*residual=*/false);
    p.residualSer = serProxy(r.avf, bits, /*residual=*/true);
    p.areaOverhead = cost.areaOverhead;
    p.energyOverhead = cost.energyOverhead;
    p.ipc = r.ipc;
    return p;
}

/** Exhaustive reference: every assignment of the space, evaluated. */
std::vector<ProtectionPoint>
exhaustivePoints(const Setup &s, const std::vector<HwStruct> &structs,
                 const std::vector<Cycle> &ladder, unsigned space_seed)
{
    std::vector<ProtectionPoint> pts;
    for (const auto &prot :
         ProtectionExplorer::allAssignments(structs, ladder)) {
        Experiment e;
        e.cfg = s.cfg;
        e.cfg.protection = prot;
        e.mix = s.mix;
        e.budget = kBudget;
        pts.push_back(makePoint(s.cfg, prot, syntheticRun(e, space_seed)));
    }
    return pts;
}

std::set<std::string>
labelSet(const std::vector<ProtectionPoint> &pts,
         const std::vector<std::size_t> &idx)
{
    std::set<std::string> out;
    for (auto i : idx)
        out.insert(pts[i].label);
    return out;
}

void
expectSamePoint(const ProtectionPoint &a, const ProtectionPoint &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.rawSer, b.rawSer); // bit-exact, not approximate
    EXPECT_EQ(a.residualSer, b.residualSer);
    EXPECT_EQ(a.areaOverhead, b.areaOverhead);
    EXPECT_EQ(a.energyOverhead, b.energyOverhead);
    EXPECT_EQ(a.ipc, b.ipc);
}

// (a) Soundness: nothing the search evaluated dominates a frontier point.
TEST(BeamProperties, FrontierNeverDominatedByAnyEvaluatedCandidate)
{
    auto s = smallSetup();
    for (unsigned seed : {1u, 2u, 5u}) {
        SCOPED_TRACE("space seed " + std::to_string(seed));
        ProtectionExplorer explorer(s.cfg, s.mix, kBudget);
        CampaignRunner pool(2);
        auto result = explorer.exploreBeam(pool, syntheticOptions(seed));

        ASSERT_FALSE(result.frontier.empty());
        for (auto f : result.frontier)
            for (const auto &p : result.points)
                EXPECT_FALSE(ProtectionExplorer::dominates(p,
                                                           result.points[f]))
                    << p.label << " dominates frontier point "
                    << result.points[f].label;
        // The reported frontier IS the Pareto set of the evaluated points.
        EXPECT_EQ(result.frontier,
                  ProtectionExplorer::paretoFrontier(result.points));
    }
}

// (b) Determinism: bit-identical for any worker count; the frontier is a
// set property, invariant under candidate evaluation order.
TEST(BeamProperties, BitIdenticalAcrossWorkerCountsAndEvaluationOrder)
{
    auto s = smallSetup();
    ProtectionExplorer explorer(s.cfg, s.mix, kBudget);
    CampaignRunner serial(1);
    auto a = explorer.exploreBeam(serial, syntheticOptions(3));
    CampaignRunner parallel(4);
    auto b = explorer.exploreBeam(parallel, syntheticOptions(3));

    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        SCOPED_TRACE(a.points[i].label);
        expectSamePoint(a.points[i], b.points[i]);
    }
    EXPECT_EQ(a.frontier, b.frontier);
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.prunedCount, b.prunedCount);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].generation, b.trace[i].generation);
        EXPECT_EQ(a.trace[i].assignment, b.trace[i].assignment);
        EXPECT_EQ(a.trace[i].action, b.trace[i].action);
    }
    EXPECT_EQ(a.csv(), b.csv());
    EXPECT_EQ(a.json(), b.json());

    // Order invariance: permute the evaluated points and the frontier
    // comes back as the same set of assignments.
    auto shuffled = a.points;
    std::reverse(shuffled.begin(), shuffled.end());
    std::rotate(shuffled.begin(), shuffled.begin() + shuffled.size() / 3,
                shuffled.end());
    EXPECT_EQ(labelSet(shuffled,
                       ProtectionExplorer::paretoFrontier(shuffled)),
              labelSet(a.points, a.frontier));
}

// (c) Completeness: a beam holding the whole space IS exhaustive search.
TEST(BeamProperties, WideBeamReproducesExhaustiveSearch)
{
    auto s = smallSetup();
    constexpr unsigned seed = 4;
    ProtectionExplorer explorer(s.cfg, s.mix, kBudget);
    CampaignRunner pool(2);

    BeamOptions opt = syntheticOptions(seed);
    opt.maxStructures = 3;
    opt.scrubLadder = {4096};  // 4 variants^3 structures = 64 assignments
    opt.beamWidth = 4096;      // >= |space|: nothing ever falls off
    opt.generations = 4;       // >= space diameter under single moves
    auto beam = explorer.exploreBeam(pool, opt);

    ASSERT_GE(beam.priority.size(), 3u);
    std::vector<HwStruct> structs(beam.priority.begin(),
                                  beam.priority.begin() + 3);
    auto exhaustive = exhaustivePoints(s, structs, opt.scrubLadder, seed);
    ASSERT_EQ(exhaustive.size(), 64u);
    auto exhaustive_frontier =
        ProtectionExplorer::paretoFrontier(exhaustive);

    EXPECT_EQ(labelSet(beam.points, beam.frontier),
              labelSet(exhaustive, exhaustive_frontier));
    // Values, not just names: frontier points must match bit-for-bit.
    for (auto bi : beam.frontier) {
        const auto &bp = beam.points[bi];
        auto it = std::find_if(exhaustive.begin(), exhaustive.end(),
                               [&](const ProtectionPoint &p) {
                                   return p.label == bp.label;
                               });
        ASSERT_NE(it, exhaustive.end()) << bp.label;
        SCOPED_TRACE(bp.label);
        expectSamePoint(*it, bp);
    }
}

// (d) Safe pruning: the optimistic-bound proof holds empirically — no
// pruned candidate belongs to the exhaustive frontier.
TEST(BeamProperties, PruningNeverRemovesAnExhaustiveFrontierPoint)
{
    auto s = smallSetup();
    for (unsigned seed : {1u, 4u, 7u}) {
        SCOPED_TRACE("space seed " + std::to_string(seed));
        ProtectionExplorer explorer(s.cfg, s.mix, kBudget);
        CampaignRunner pool(2);

        BeamOptions opt = syntheticOptions(seed);
        opt.maxStructures = 3;
        opt.scrubLadder = {4096};
        opt.beamWidth = 4096;
        opt.generations = 4;
        auto beam = explorer.exploreBeam(pool, opt);

        std::vector<HwStruct> structs(beam.priority.begin(),
                                      beam.priority.begin() + 3);
        auto exhaustive =
            exhaustivePoints(s, structs, opt.scrubLadder, seed);
        auto frontier_labels = labelSet(
            exhaustive, ProtectionExplorer::paretoFrontier(exhaustive));

        std::size_t pruned = 0;
        for (const auto &t : beam.trace)
            if (t.action == BeamTraceEvent::Action::Pruned) {
                ++pruned;
                EXPECT_EQ(frontier_labels.count(t.assignment), 0u)
                    << "pruned a frontier point: " << t.assignment;
            }
        EXPECT_EQ(pruned, beam.prunedCount);
        // The property must not hold vacuously.
        EXPECT_GT(pruned, 0u);
    }
}

// (e) Resume: journal replay is bit-identical and never re-simulates a
// seen assignment — even from a partial journal, and even under an
// evaluation budget (which counts journal replays as submissions).
TEST(BeamProperties, ResumeFromFullOrPartialJournalIsBitIdentical)
{
    auto s = smallSetup();
    auto path = ::testing::TempDir() + "beam-props.journal";
    auto partial = ::testing::TempDir() + "beam-props-partial.journal";
    std::remove(path.c_str());
    std::remove(partial.c_str());

    std::atomic<std::uint64_t> simulated{0};
    auto counting = [&](unsigned seed) {
        BeamOptions opt = syntheticOptions(seed);
        opt.evalBudget = 25; // truncate the search mid-generation
        opt.runFn = [&simulated, seed](const Experiment &e, std::size_t) {
            ++simulated;
            return syntheticRun(e, seed);
        };
        return opt;
    };

    ProtectionExplorer explorer(s.cfg, s.mix, kBudget);
    CampaignRunner pool(1);

    auto fresh_opt = counting(2);
    fresh_opt.journalPath = path;
    auto fresh = explorer.exploreBeam(pool, fresh_opt);
    EXPECT_EQ(fresh.evaluations, 25u);
    EXPECT_EQ(fresh.journalHits, 0u);
    std::uint64_t fresh_sims = simulated.exchange(0);
    EXPECT_EQ(fresh_sims, fresh.evaluations + 1); // + the baseline

    auto expectSameSearch = [&](const ExplorationResult &r) {
        ASSERT_EQ(r.points.size(), fresh.points.size());
        for (std::size_t i = 0; i < r.points.size(); ++i) {
            SCOPED_TRACE(fresh.points[i].label);
            expectSamePoint(r.points[i], fresh.points[i]);
        }
        EXPECT_EQ(r.frontier, fresh.frontier);
        EXPECT_EQ(r.evaluations, fresh.evaluations);
        EXPECT_EQ(r.prunedCount, fresh.prunedCount);
        ASSERT_EQ(r.trace.size(), fresh.trace.size());
        for (std::size_t i = 0; i < r.trace.size(); ++i) {
            EXPECT_EQ(r.trace[i].assignment, fresh.trace[i].assignment);
            EXPECT_EQ(r.trace[i].action, fresh.trace[i].action);
        }
    };

    // Full-journal resume: nothing re-simulates.
    auto full_opt = counting(2);
    full_opt.journalPath = path;
    full_opt.resume = true;
    auto resumed = explorer.exploreBeam(pool, full_opt);
    expectSameSearch(resumed);
    EXPECT_EQ(resumed.journalHits, resumed.evaluations);
    EXPECT_EQ(simulated.exchange(0), 0u);

    // Partial-journal resume: keep the first 10 run records (the crash
    // case); replays those, honestly re-simulates the rest, and still
    // walks the exact original trajectory because the budget counts
    // journal replays as submissions.
    {
        std::ifstream in(path);
        std::ofstream out(partial);
        std::string line;
        std::size_t kept = 0;
        while (kept < 10 && std::getline(in, line))
            if (line.rfind("run v3 ", 0) == 0) {
                out << line << '\n';
                ++kept;
            }
        ASSERT_EQ(kept, 10u);
    }
    auto partial_opt = counting(2);
    partial_opt.journalPath = partial;
    partial_opt.resume = true;
    auto partial_res = explorer.exploreBeam(pool, partial_opt);
    expectSameSearch(partial_res);
    EXPECT_EQ(partial_res.journalHits, 9u); // 10 kept - the baseline
    EXPECT_EQ(simulated.exchange(0),
              partial_res.evaluations - partial_res.journalHits);

    std::remove(path.c_str());
    std::remove(partial.c_str());
}

// Option validation dies loudly (the CLI parser rejects these earlier;
// this guards direct library users), and the helper surfaces behave.
TEST(BeamProperties, OptionValidationAndHelpers)
{
    auto s = smallSetup();
    ProtectionExplorer explorer(s.cfg, s.mix, kBudget);
    CampaignRunner pool(1);
    ThrowGuard guard;

    BeamOptions opt = syntheticOptions(1);
    opt.beamWidth = 0;
    EXPECT_THROW(explorer.exploreBeam(pool, opt), SimError);
    opt = syntheticOptions(1);
    opt.maxStructures = 0;
    EXPECT_THROW(explorer.exploreBeam(pool, opt), SimError);
    opt = syntheticOptions(1);
    opt.scrubLadder = {0};
    EXPECT_THROW(explorer.exploreBeam(pool, opt), SimError);
    opt = syntheticOptions(1);
    opt.scrubLadder = {Cycle{1} << 31};
    EXPECT_THROW(explorer.exploreBeam(pool, opt), SimError);

    // defaultScrubLadder: decade around the interval, clamped and deduped.
    EXPECT_EQ(ProtectionExplorer::defaultScrubLadder(10000),
              (std::vector<Cycle>{1000, 10000, 100000}));
    EXPECT_EQ(ProtectionExplorer::defaultScrubLadder(0),
              (std::vector<Cycle>{1000, 10000, 100000}));
    EXPECT_EQ(ProtectionExplorer::defaultScrubLadder(20),
              (std::vector<Cycle>{16, 20, 200}));
    auto top = ProtectionExplorer::defaultScrubLadder(Cycle{1} << 30);
    EXPECT_EQ(top.back(), Cycle{1} << 30);
    EXPECT_EQ(top.size(), 2u);

    // The human-readable table lists exactly the frontier.
    auto result = explorer.exploreBeam(pool, syntheticOptions(1));
    auto tbl = result.table();
    for (auto f : result.frontier)
        EXPECT_NE(tbl.find(result.points[f].label), std::string::npos)
            << "frontier point missing from table: "
            << result.points[f].label;
}

// ROADMAP item 4 tripwire: the L2 capacity-pricing caveat fires exactly
// once, exactly when L2 AVF tracking is on AND some candidate assigns
// protection to L2Data or L2Tag.
TEST(BeamProperties, L2PricingCaveatFiresExactlyWhenL2IsPricedUnderTracking)
{
    auto countWarnings = [](const ExplorationResult &r) {
        std::size_t n = 0;
        for (const auto &w : r.warnings)
            if (w == l2PricingWarning)
                ++n;
        return n;
    };
    auto exploreWith = [&](bool track_l2, unsigned max_structures) {
        auto s = smallSetup();
        s.cfg.avf.trackL2Avf = track_l2;
        ProtectionExplorer explorer(s.cfg, s.mix, kBudget);
        CampaignRunner pool(2);
        BeamOptions opt = syntheticOptions(3);
        opt.maxStructures = max_structures;
        opt.scrubLadder = {4096};
        return explorer.exploreBeam(pool, opt);
    };

    // Tracking on, search deep enough to reach the L2 arrays (they rank
    // last in the synthetic space): candidates protect L2, caveat fires
    // once despite many L2-protecting candidates.
    auto fired = exploreWith(/*track_l2=*/true, /*max_structures=*/10);
    ASSERT_EQ(countWarnings(fired), 1u);
    EXPECT_NE(std::find(fired.priority.begin(), fired.priority.end(),
                        HwStruct::L2Data),
              fired.priority.end());
    bool protects_l2 = false;
    for (const auto &p : fired.points)
        protects_l2 =
            protects_l2 ||
            p.protection.schemeFor(HwStruct::L2Data) != ProtScheme::None ||
            p.protection.schemeFor(HwStruct::L2Tag) != ProtScheme::None;
    EXPECT_TRUE(protects_l2);
    // The caveat reaches every machine-readable output.
    EXPECT_NE(fired.csv().find(std::string("# warning: ") +
                               l2PricingWarning),
              std::string::npos);
    EXPECT_NE(fired.json().find("trackL2Avf"), std::string::npos);

    // Tracking on but the search never reaches the L2 arrays: silent.
    auto shallow = exploreWith(/*track_l2=*/true, /*max_structures=*/2);
    EXPECT_EQ(countWarnings(shallow), 0u);
    EXPECT_EQ(shallow.csv().find("# warning:"), std::string::npos);

    // Tracking off: L2 is not even a ranked hotspot, so no candidate can
    // protect it and the caveat must not fire.
    auto untracked = exploreWith(/*track_l2=*/false, /*max_structures=*/10);
    EXPECT_EQ(countWarnings(untracked), 0u);
    EXPECT_EQ(std::find(untracked.priority.begin(),
                        untracked.priority.end(), HwStruct::L2Data),
              untracked.priority.end());

    // The prefix sweep shares the tripwire.
    auto s = smallSetup();
    s.cfg.avf.trackL2Avf = true;
    ProtectionExplorer prefix(s.cfg, s.mix, kBudget,
                              /*max_depth=*/10);
    CampaignRunner pool(2);
    auto swept = prefix.explore(pool);
    EXPECT_EQ(countWarnings(swept), 1u);
}

// The real simulator end-to-end: a tiny beam on a 2-context mix upholds
// the overlay invariants and reports a sound frontier.
TEST(BeamProperties, RealSimulatorSmallBeam)
{
    auto s = smallSetup();
    ProtectionExplorer explorer(s.cfg, s.mix, kBudget);
    CampaignRunner pool(2);

    BeamOptions opt;
    opt.beamWidth = 2;
    opt.generations = 2;
    opt.maxStructures = 3;
    opt.scrubLadder = {5000};
    auto result = explorer.exploreBeam(pool, opt);

    ASSERT_FALSE(result.points.empty());
    EXPECT_EQ(result.points[0].label, "none");
    ASSERT_FALSE(result.frontier.empty());
    // The unprotected point is non-dominated (zero overhead).
    EXPECT_NE(std::find(result.frontier.begin(), result.frontier.end(),
                        std::size_t{0}),
              result.frontier.end());

    for (const auto &p : result.points) {
        SCOPED_TRACE(p.label);
        // The overlay never perturbs timing.
        EXPECT_EQ(p.rawSer, result.points[0].rawSer);
        EXPECT_EQ(p.ipc, result.points[0].ipc);
        EXPECT_LE(p.residualSer, p.rawSer);
        if (p.protection.any()) {
            EXPECT_LT(p.residualSer, p.rawSer);
        }
    }
    for (auto f : result.frontier)
        for (const auto &p : result.points)
            EXPECT_FALSE(
                ProtectionExplorer::dominates(p, result.points[f]))
                << p.label << " dominates " << result.points[f].label;
    // Mixed (multi-scheme) assignments were actually explored.
    bool mixed = false;
    for (const auto &p : result.points) {
        std::set<ProtScheme> schemes;
        for (std::size_t i = 0; i < numHwStructs; ++i) {
            auto sc = p.protection.schemeFor(static_cast<HwStruct>(i));
            if (sc != ProtScheme::None)
                schemes.insert(sc);
        }
        mixed = mixed || schemes.size() > 1;
    }
    EXPECT_TRUE(mixed);
}

} // namespace
} // namespace smtavf
