/**
 * @file
 * Unit tests for the performance/reliability metrics.
 */

#include <gtest/gtest.h>

#include "metrics/metrics.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

SimResult
makeResult(std::vector<double> thread_ipcs)
{
    SimResult r;
    r.cycles = 1000;
    for (double ipc : thread_ipcs) {
        ThreadPerf t;
        t.ipc = ipc;
        t.committed = static_cast<std::uint64_t>(ipc * 1000);
        r.totalCommitted += t.committed;
        r.threads.push_back(t);
    }
    r.ipc = static_cast<double>(r.totalCommitted) / r.cycles;
    return r;
}

TEST(MetricsTest, WeightedSpeedupSumsRatios)
{
    auto r = makeResult({1.0, 0.5});
    EXPECT_DOUBLE_EQ(weightedSpeedup(r, {2.0, 1.0}), 0.5 + 0.5);
}

TEST(MetricsTest, WeightedSpeedupMismatchFatal)
{
    ThrowGuard guard;
    auto r = makeResult({1.0, 0.5});
    EXPECT_THROW(weightedSpeedup(r, {2.0}), SimError);
    EXPECT_THROW(weightedSpeedup(r, {2.0, 0.0}), SimError);
}

TEST(MetricsTest, HarmonicWeightedIpcBalanced)
{
    auto r = makeResult({1.0, 1.0});
    // Both threads at weighted IPC 0.5 -> harmonic mean 0.5.
    EXPECT_DOUBLE_EQ(harmonicWeightedIpc(r, {2.0, 2.0}), 0.5);
}

TEST(MetricsTest, HarmonicPenalizesImbalance)
{
    auto balanced = makeResult({1.0, 1.0});
    auto skewed = makeResult({1.9, 0.1});
    double hb = harmonicWeightedIpc(balanced, {2.0, 2.0});
    double hs = harmonicWeightedIpc(skewed, {2.0, 2.0});
    EXPECT_GT(hb, hs) << "equal progress must score higher";
    // Same weighted speedup though:
    EXPECT_DOUBLE_EQ(weightedSpeedup(balanced, {2.0, 2.0}),
                     weightedSpeedup(skewed, {2.0, 2.0}));
}

TEST(MetricsTest, HarmonicZeroThreadYieldsZero)
{
    auto r = makeResult({1.0, 0.0});
    EXPECT_DOUBLE_EQ(harmonicWeightedIpc(r, {1.0, 1.0}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMeanIpc(r), 0.0);
}

TEST(MetricsTest, HarmonicMeanIpc)
{
    auto r = makeResult({1.0, 0.5});
    EXPECT_DOUBLE_EQ(harmonicMeanIpc(r), 2.0 / (1.0 + 2.0));
}

TEST(MetricsTest, MitfIsIpcOverAvf)
{
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    l.addInterval(HwStruct::IQ, 0, 100, 0, 50, true); // AVF 0.5 over 100
    l.finalize(100);

    auto r = makeResult({2.0});
    r.avf = AvfReport::fromLedger(l);
    EXPECT_DOUBLE_EQ(r.mitf(HwStruct::IQ), 2.0 / 0.5);
    EXPECT_DOUBLE_EQ(r.threadMitf(HwStruct::IQ, 0), 2.0 / 0.5);
}

TEST(MetricsTest, MitfZeroAvfIsZero)
{
    auto r = makeResult({2.0});
    AvfLedger l(1);
    l.setStructureBits(HwStruct::IQ, 100);
    l.finalize(100);
    r.avf = AvfReport::fromLedger(l);
    EXPECT_DOUBLE_EQ(r.mitf(HwStruct::IQ), 0.0);
}

TEST(MetricsTest, ThreadMitfBoundsChecked)
{
    ThrowGuard guard;
    auto r = makeResult({2.0});
    EXPECT_THROW(r.threadMitf(HwStruct::IQ, 5), SimError);
}

TEST(ReportTest, FigureStructsMatchPaperOrder)
{
    const auto &order = AvfReport::figureStructs();
    ASSERT_EQ(order.size(), 8u);
    EXPECT_EQ(order.front(), HwStruct::IQ);
    EXPECT_EQ(order.back(), HwStruct::LsqTag);
}

TEST(ReportTest, StrIncludesTrackedStructures)
{
    AvfLedger l(2);
    l.setStructureBits(HwStruct::IQ, 100);
    l.addInterval(HwStruct::IQ, 1, 50, 0, 10, true);
    l.finalize(100);
    auto report = AvfReport::fromLedger(l);
    auto s = report.str();
    EXPECT_NE(s.find("IQ"), std::string::npos);
    EXPECT_NE(s.find("T1"), std::string::npos);
}

} // namespace
} // namespace smtavf
