/**
 * @file
 * Reference-model fuzz tests: drive the cache, TLB, ledger and timeline
 * with long random traces and compare against simple oracle
 * implementations written independently of the production code.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "avf/ledger.hh"
#include "avf/timeline.hh"
#include "base/rng.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace smtavf
{
namespace
{

// ---- cache vs. a naive LRU oracle -----------------------------------------

/** Oracle: per-set LRU lists of line addresses. */
class LruOracle
{
  public:
    LruOracle(std::uint32_t sets, std::uint32_t ways,
              std::uint32_t line_bytes)
        : sets_(sets), ways_(ways), lineBytes_(line_bytes),
          lists_(sets)
    {
    }

    bool
    present(Addr addr) const
    {
        Addr line = addr & ~Addr{lineBytes_ - 1};
        const auto &l = lists_[setOf(addr)];
        for (Addr a : l)
            if (a == line)
                return true;
        return false;
    }

    /** Touch (hit refresh); returns hit. */
    bool
    touch(Addr addr)
    {
        Addr line = addr & ~Addr{lineBytes_ - 1};
        auto &l = lists_[setOf(addr)];
        for (auto it = l.begin(); it != l.end(); ++it) {
            if (*it == line) {
                l.erase(it);
                l.push_front(line);
                return true;
            }
        }
        return false;
    }

    void
    fill(Addr addr)
    {
        Addr line = addr & ~Addr{lineBytes_ - 1};
        auto &l = lists_[setOf(addr)];
        for (Addr a : l)
            if (a == line)
                return;
        if (l.size() >= ways_)
            l.pop_back();
        l.push_front(line);
    }

  private:
    std::uint32_t
    setOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(addr / lineBytes_) & (sets_ - 1);
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint32_t lineBytes_;
    std::vector<std::list<Addr>> lists_;
};

TEST(FuzzCache, MatchesLruOracleOverRandomTrace)
{
    CacheConfig cfg{"fuzz", 4096, 4, 64, 1, 2}; // 16 sets x 4 ways
    Cache cache(cfg);
    LruOracle oracle(cache.numSets(), cfg.ways, cfg.lineBytes);
    Rng rng(0xfeed);

    for (int i = 0; i < 200000; ++i) {
        // Footprint ~4x capacity so evictions are constant.
        Addr addr = rng.uniform(16 * 1024) & ~Addr{3};
        bool is_write = rng.bernoulli(0.3);
        bool hit = cache.access(addr, 4, is_write, 0, i);
        bool oracle_hit = oracle.touch(addr);
        ASSERT_EQ(hit, oracle_hit) << "step " << i << " addr " << addr;
        if (!hit) {
            cache.fill(addr, 0, i);
            oracle.fill(addr);
        }
    }
}

TEST(FuzzCache, ProbeAgreesWithOracleUnderMixedOps)
{
    CacheConfig cfg{"fuzz2", 2048, 2, 32, 1, 2};
    Cache cache(cfg);
    LruOracle oracle(cache.numSets(), cfg.ways, cfg.lineBytes);
    Rng rng(0xdead);

    for (int i = 0; i < 100000; ++i) {
        Addr addr = rng.uniform(8 * 1024) & ~Addr{3};
        switch (rng.uniform(3)) {
          case 0:
            ASSERT_EQ(cache.probe(addr), oracle.present(addr));
            break;
          case 1:
            if (cache.access(addr, 4, false, 0, i) != oracle.touch(addr))
                FAIL() << "divergence at step " << i;
            break;
          default:
            cache.fill(addr, 0, i);
            oracle.fill(addr);
            break;
        }
    }
}

// ---- TLB vs. oracle ---------------------------------------------------------

TEST(FuzzTlb, MatchesLruOracleWithThreadTags)
{
    TlbConfig cfg{"fuzz", 64, 4, 8192, 200};
    Tlb tlb(cfg);
    // Oracle keyed by (tid, vpn) folded into one address space: the TLB
    // tags entries by thread, equivalent to disjoint vpn ranges.
    Rng rng(0xbeef);

    // Reference: per-set LRU of (vpn, tid) pairs.
    struct Key
    {
        Addr vpn;
        ThreadId tid;
        bool operator==(const Key &o) const
        {
            return vpn == o.vpn && tid == o.tid;
        }
    };
    std::vector<std::list<Key>> sets(16);

    for (int i = 0; i < 100000; ++i) {
        ThreadId tid = static_cast<ThreadId>(rng.uniform(4));
        Addr addr = rng.uniform(64) * 8192 + rng.uniform(8192);
        Addr vpn = addr / 8192;
        auto &l = sets[vpn % 16];

        bool oracle_hit = false;
        for (auto it = l.begin(); it != l.end(); ++it) {
            if (*it == Key{vpn, tid}) {
                l.erase(it);
                l.push_front({vpn, tid});
                oracle_hit = true;
                break;
            }
        }
        if (!oracle_hit) {
            if (l.size() >= 4)
                l.pop_back();
            l.push_front({vpn, tid});
        }

        auto penalty = tlb.access(addr, tid, i);
        ASSERT_EQ(penalty == 0, oracle_hit) << "step " << i;
    }
}

// ---- ledger vs. brute-force accumulation -------------------------------------

TEST(FuzzLedger, MatchesBruteForceAccumulation)
{
    Rng rng(0xabcd);
    AvfLedger ledger(4);
    ledger.setStructureBits(HwStruct::IQ, 1u << 20);

    double ace[4] = {};
    double unace = 0;
    for (int i = 0; i < 50000; ++i) {
        auto tid = static_cast<ThreadId>(rng.uniform(4));
        Cycle start = rng.uniform(10000);
        Cycle end = start + rng.uniform(500);
        auto bits = static_cast<std::uint32_t>(rng.uniformRange(1, 128));
        bool is_ace = rng.bernoulli(0.5);
        ledger.addInterval(HwStruct::IQ, tid, bits, start, end, is_ace);
        double bc = static_cast<double>(bits) * (end - start);
        if (is_ace)
            ace[tid] += bc;
        else
            unace += bc;
    }
    ledger.finalize(10500);

    double total_ace = ace[0] + ace[1] + ace[2] + ace[3];
    double denom = static_cast<double>(1u << 20) * 10500;
    EXPECT_NEAR(ledger.avf(HwStruct::IQ), total_ace / denom, 1e-12);
    EXPECT_NEAR(ledger.occupancy(HwStruct::IQ),
                (total_ace + unace) / denom, 1e-12);
    for (ThreadId t = 0; t < 4; ++t)
        EXPECT_NEAR(ledger.threadAvf(HwStruct::IQ, t), ace[t] / denom,
                    1e-12);
}

TEST(FuzzTimeline, WindowDeltasSumToLedgerTotal)
{
    Rng rng(0x1357);
    AvfLedger ledger(1);
    ledger.setStructureBits(HwStruct::ROB, 1u << 16);
    AvfTimeline timeline(ledger, 100);

    std::uint64_t booked = 0;
    Cycle now = 0;
    for (int i = 0; i < 5000; ++i) {
        now += rng.uniform(5);
        timeline.tick(now);
        Cycle start = now > 50 ? now - rng.uniform(50) : 0;
        auto bits = static_cast<std::uint32_t>(rng.uniformRange(1, 64));
        ledger.addInterval(HwStruct::ROB, 0, bits, start, now, true);
        booked += static_cast<std::uint64_t>(bits) * (now - start);
    }
    timeline.finish(now + 1);

    double windowed = 0;
    // Reconstruct total ACE mass from per-window AVF x window length.
    double bits_total = static_cast<double>(1u << 16);
    Cycle covered = 0;
    for (std::size_t w = 0; w < timeline.windows(); ++w) {
        Cycle len = w + 1 < timeline.windows()
                        ? 100
                        : (now + 1) - covered;
        windowed +=
            timeline.windowAvf(HwStruct::ROB, w) * bits_total * len;
        covered += len;
    }
    EXPECT_NEAR(windowed, static_cast<double>(booked),
                static_cast<double>(booked) * 1e-9);
}

} // namespace
} // namespace smtavf
