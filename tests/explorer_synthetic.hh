/**
 * @file
 * The simulation-free candidate evaluator shared by the explorer property
 * tests and the golden-file determinism test: a pure value function of
 * the protection assignment, built entirely from exact dyadic rationals
 * so every downstream comparison — and the committed golden fixtures —
 * are bit-exact across compilers and optimization levels.
 *
 * It honors the two invariants the beam search's pruning proof relies on:
 * IPC and raw AVF are candidate-independent (the protection overlay never
 * perturbs timing), and residual AVF never falls below the scheme's
 * coverage floor used by optimisticResidualSer (parity 40/256 > 32/256,
 * SECDED 2/256 > 1/256, scrubbing interval/2^20/256 > 0).
 */

#ifndef SMTAVF_TESTS_EXPLORER_SYNTHETIC_HH
#define SMTAVF_TESTS_EXPLORER_SYNTHETIC_HH

#include <array>

#include "avf/report.hh"
#include "policy/fetch_policy.hh"
#include "sim/campaign.hh"

namespace smtavf
{

/**
 * Evaluate @p e without simulating. Raw AVF of figure structure i is an
 * exact multiple of 1/64, perturbed by @p space_seed to randomize the
 * search space; residual is raw times an exact dyadic per-scheme factor
 * (interval-sensitive for scrubbing, exact for power-of-two ladder
 * rungs). IPC is constant across candidates.
 */
inline SimResult
syntheticExplorerRun(const Experiment &e, unsigned space_seed)
{
    std::array<double, numHwStructs> raw{}, occ{}, residual{};
    std::array<std::array<double, maxContexts>, numHwStructs> tavf{};
    auto fill = [&](HwStruct s, double raw_avf) {
        auto i = static_cast<std::size_t>(s);
        raw[i] = raw_avf;
        occ[i] = raw_avf;
        double frac;
        switch (e.cfg.protection.schemeFor(s)) {
          case ProtScheme::Parity:
            frac = 40.0 / 256.0;
            break;
          case ProtScheme::Secded:
            frac = 2.0 / 256.0;
            break;
          case ProtScheme::SecdedScrub:
            frac = static_cast<double>(
                       e.cfg.protection.scrubIntervalFor(s)) /
                   (1024.0 * 1024.0) / 256.0;
            break;
          default:
            frac = 1.0;
            break;
        }
        residual[i] = raw_avf * frac;
        for (unsigned t = 0; t < e.mix.contexts; ++t)
            tavf[i][t] = raw_avf;
    };
    for (auto s : AvfReport::figureStructs()) {
        auto i = static_cast<std::size_t>(s);
        fill(s, static_cast<double>((i * 7 + space_seed * 5) % 29 + 3) /
                    64.0);
    }
    // When L2 tracking is on, the L2 arrays are hotspots too — ranked
    // last (smallest raw AVF) so small-maxStructures searches never
    // reach them, which is what the pricing-tripwire tests pivot on.
    if (e.cfg.avf.trackL2Avf) {
        fill(HwStruct::L2Data, 2.0 / 64.0);
        fill(HwStruct::L2Tag, 1.0 / 64.0);
    }

    SimResult r;
    r.mixName = e.mix.name;
    r.policyName = fetchPolicyName(e.cfg.fetchPolicy);
    r.cycles = 1024;
    r.totalCommitted = 1536;
    r.ipc = 1.5;
    for (const auto &bench : e.mix.benchmarks)
        r.threads.push_back({bench, 768, 1.5});
    r.avf = AvfReport::restore(e.mix.contexts, r.cycles, raw, occ, residual,
                               tavf);
    return r;
}

} // namespace smtavf

#endif // SMTAVF_TESTS_EXPLORER_SYNTHETIC_HH
