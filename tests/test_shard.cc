/**
 * @file
 * Sharded campaigns and journal merging. A campaign split with --shard
 * I/N across N hosts must execute exactly the runs the unsharded
 * campaign would (same seeds, same results), and merge-journals must
 * reassemble the shard journals into a byte-deterministic file
 * equivalent to the journal of the unsharded run. These tests prove
 * both properties differentially.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/journal.hh"
#include "test_util.hh"
#include "workload/mixes.hh"

namespace smtavf
{
namespace
{

constexpr std::uint64_t kBudget = 4000;

std::vector<Experiment>
smallCampaign()
{
    const char *names[] = {"2ctx-cpu-A", "2ctx-mix-A", "2ctx-mem-A",
                           "2ctx-cpu-B", "2ctx-mix-B"};
    std::vector<Experiment> exps;
    for (const char *name : names)
        exps.push_back(makeExperiment(findMix(name), FetchPolicyKind::Icount,
                                      kBudget));
    deriveSeeds(exps, 97);
    return exps;
}

/** Non-comment lines of a journal, sorted for order-independent compare. */
std::vector<std::string>
sortedRecords(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty() && line[0] != '#')
            lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
}

TEST(ShardExperiments, PartitionIsCompleteDisjointAndSeedPreserving)
{
    auto exps = smallCampaign();
    const unsigned nshards = 3;

    std::vector<Experiment> reunion;
    std::size_t total = 0;
    for (unsigned s = 0; s < nshards; ++s) {
        auto shard = shardExperiments(exps, s, nshards);
        total += shard.size();
        for (const auto &e : shard)
            reunion.push_back(e);
    }
    ASSERT_EQ(total, exps.size());

    // Every experiment appears in exactly one shard, with the seed it got
    // from its position in the FULL list — the property that makes shard
    // results identical to the unsharded campaign's.
    for (const auto &orig : exps) {
        auto hit = std::count_if(reunion.begin(), reunion.end(),
                                 [&](const Experiment &e) {
                                     return e.label == orig.label;
                                 });
        ASSERT_EQ(hit, 1) << orig.label;
        auto it = std::find_if(reunion.begin(), reunion.end(),
                               [&](const Experiment &e) {
                                   return e.label == orig.label;
                               });
        EXPECT_EQ(it->cfg.seed, orig.cfg.seed) << orig.label;
    }

    // Round-robin striping: shard s holds indices s, s+N, ...
    auto shard1 = shardExperiments(exps, 1, nshards);
    ASSERT_EQ(shard1.size(), 2u);
    EXPECT_EQ(shard1[0].label, exps[1].label);
    EXPECT_EQ(shard1[1].label, exps[4].label);
}

TEST(ShardExperiments, SingleShardIsIdentity)
{
    auto exps = smallCampaign();
    auto only = shardExperiments(exps, 0, 1);
    ASSERT_EQ(only.size(), exps.size());
    for (std::size_t i = 0; i < exps.size(); ++i) {
        EXPECT_EQ(only[i].label, exps[i].label);
        EXPECT_EQ(only[i].cfg.seed, exps[i].cfg.seed);
    }
}

TEST(ShardExperiments, RejectsBadArguments)
{
    ThrowGuard guard;
    auto exps = smallCampaign();
    EXPECT_THROW(shardExperiments(exps, 0, 0), SimError);
    EXPECT_THROW(shardExperiments(exps, 3, 3), SimError);
    EXPECT_THROW(shardExperiments(exps, 7, 3), SimError);
}

/**
 * The acceptance property: N shard campaigns, journaled separately and
 * merged, produce a record set identical to the unsharded campaign's
 * journal — so a fleet of machines can split a sweep and hand back one
 * resumable file.
 */
TEST(ShardMerge, MergedShardJournalsEqualUnshardedJournal)
{
    auto exps = smallCampaign();
    CampaignRunner pool(2);

    auto full_path = ::testing::TempDir() + "shard-full.journal";
    std::remove(full_path.c_str());
    CampaignOptions fopt;
    fopt.journalPath = full_path;
    ASSERT_TRUE(runTolerant(pool, exps, fopt).allOk());

    const unsigned nshards = 2;
    std::vector<std::string> shard_paths;
    for (unsigned s = 0; s < nshards; ++s) {
        auto path = ::testing::TempDir() + "shard-" + std::to_string(s) +
                    ".journal";
        std::remove(path.c_str());
        CampaignOptions sopt;
        sopt.journalPath = path;
        auto shard = shardExperiments(exps, s, nshards);
        ASSERT_TRUE(runTolerant(pool, shard, sopt).allOk());
        shard_paths.push_back(path);
    }

    auto merged_path = ::testing::TempDir() + "shard-merged.journal";
    std::remove(merged_path.c_str());
    std::size_t unique = mergeJournals(shard_paths, merged_path);
    EXPECT_EQ(unique, exps.size());

    // Same record set, byte for byte (hexfloats round-trip exactly).
    EXPECT_EQ(sortedRecords(merged_path), sortedRecords(full_path));

    // And the merged journal resumes the full campaign without re-running
    // a single simulation.
    CampaignOptions ropt;
    ropt.journalPath = merged_path;
    ropt.resume = true;
    auto resumed = runTolerant(pool, exps, ropt);
    ASSERT_TRUE(resumed.allOk());
    for (const auto &o : resumed.outcomes)
        EXPECT_TRUE(o.fromJournal) << o.label;
}

TEST(ShardMerge, MergeIsIdempotentAndDeduplicates)
{
    auto exps = smallCampaign();
    exps.resize(2);
    CampaignRunner pool(2);

    auto path = ::testing::TempDir() + "dedupe-src.journal";
    std::remove(path.c_str());
    CampaignOptions opt;
    opt.journalPath = path;
    ASSERT_TRUE(runTolerant(pool, exps, opt).allOk());

    auto once = ::testing::TempDir() + "dedupe-once.journal";
    auto twice = ::testing::TempDir() + "dedupe-twice.journal";
    EXPECT_EQ(mergeJournals({path}, once), 2u);
    // Feeding the same journal twice must change nothing: records dedupe
    // by fingerprint and the sorted output is byte-deterministic.
    EXPECT_EQ(mergeJournals({path, path}, twice), 2u);
    EXPECT_EQ(sortedRecords(once), sortedRecords(twice));

    auto first = sortedRecords(once);
    EXPECT_EQ(first.size(), 2u);
}

TEST(ShardMerge, MissingInputIsFatal)
{
    ThrowGuard guard;
    auto out = ::testing::TempDir() + "merge-out.journal";
    EXPECT_THROW(
        mergeJournals({::testing::TempDir() + "nope.journal"}, out),
        SimError);
}

} // namespace
} // namespace smtavf
