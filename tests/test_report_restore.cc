/**
 * @file
 * AvfReport::restore round-trip tests — the deserialization path of the
 * campaign run journal (sim/journal.hh). The journal stores every double
 * as a hexfloat, so the contract is *bit-exact* recovery: a report that
 * survives serializeRun() + parseRun() must compare equal down to the
 * last mantissa bit, including denormals, extreme magnitudes and signed
 * zero. Damaged records (truncation anywhere, flipped CRC bytes) must be
 * rejected by parseRun, never half-applied.
 */

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <string>

#include "avf/report.hh"
#include "metrics/metrics.hh"
#include "sim/journal.hh"

namespace smtavf
{
namespace
{

/** Bit-pattern equality: distinguishes -0.0 from 0.0, unlike ==. */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

/** A report whose every slot holds a hostile-to-parse double. */
AvfReport
hostileReport(unsigned num_threads, Cycle cycles)
{
    // Denormals, extremes, signed zero, and values with no finite
    // decimal representation — everything a "%g" round trip would lose.
    const double hostile[] = {
        5e-324,                 // smallest positive denormal
        DBL_MIN / 4.0,          // a larger denormal
        DBL_MAX,                // largest finite
        DBL_MIN,                // smallest normal
        -0.0,                   // signed zero
        1.0 / 3.0,              // repeating binary fraction
        0.1,                    // classic decimal-unrepresentable
        1.0 - DBL_EPSILON,      // just under 1
    };
    constexpr std::size_t n = sizeof(hostile) / sizeof(hostile[0]);

    std::array<double, numHwStructs> avf{}, occ{}, residual{};
    std::array<std::array<double, maxContexts>, numHwStructs> tavf{};
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        avf[s] = hostile[s % n];
        occ[s] = hostile[(s + 1) % n];
        residual[s] = hostile[(s + 2) % n];
        for (unsigned t = 0; t < num_threads; ++t)
            tavf[s][t] = hostile[(s + t) % n];
    }
    return AvfReport::restore(num_threads, cycles, avf, occ, residual, tavf);
}

TEST(ReportRestore, AccessorsReturnExactBits)
{
    AvfReport r = hostileReport(3, 987'654);
    EXPECT_EQ(r.numThreads(), 3u);
    EXPECT_EQ(r.cycles(), 987'654u);

    // Spot-check against the same generator pattern — bitwise.
    EXPECT_TRUE(sameBits(r.avf(static_cast<HwStruct>(0)), 5e-324));
    EXPECT_TRUE(sameBits(r.occupancy(static_cast<HwStruct>(3)), -0.0));
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        auto hs = static_cast<HwStruct>(s);
        for (unsigned t = 0; t < 3; ++t)
            EXPECT_TRUE(std::isfinite(r.threadAvf(hs, t)));
    }
}

/** Wrap a hostile report into a full SimResult for journal round trips. */
SimResult
hostileResult(unsigned num_threads, std::uint64_t committed)
{
    SimResult r;
    r.mixName = "2ctx-mix-A";
    r.policyName = "ICOUNT";
    r.cycles = committed ? committed / 2 + 1 : 0;
    r.totalCommitted = committed;
    r.ipc = committed ? 1.0 / 3.0 : 0.0;
    for (unsigned t = 0; t < num_threads; ++t) {
        ThreadPerf p;
        p.benchmark = "bench" + std::to_string(t);
        p.committed = committed / (t + 1);
        p.ipc = t == 0 ? 5e-324 : DBL_MAX / (t + 1);
        r.threads.push_back(p);
    }
    r.avf = hostileReport(num_threads, r.cycles);
    r.stats.set("denormal", DBL_MIN / 8.0);
    r.stats.set("negzero", -0.0);
    r.stats.set("third", 1.0 / 3.0);
    return r;
}

TEST(ReportRestore, JournalRoundTripIsBitExact)
{
    const std::uint64_t fp = 0xfeedfacecafebeefULL;
    SimResult orig = hostileResult(2, 1'000'000);
    std::string line = serializeRun(fp, orig);

    std::uint64_t fp2 = 0;
    SimResult back;
    ASSERT_TRUE(parseRun(line, fp2, back));
    EXPECT_EQ(fp2, fp);

    // Re-serializing the parsed result must reproduce the wire bytes —
    // this compares every double bit-for-bit, thread rows and report
    // arrays included, without enumerating fields.
    EXPECT_EQ(serializeRun(fp, back), line);

    // And the report accessors agree bitwise with the original.
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        auto hs = static_cast<HwStruct>(s);
        EXPECT_TRUE(sameBits(back.avf.avf(hs), orig.avf.avf(hs)));
        EXPECT_TRUE(
            sameBits(back.avf.residualAvf(hs), orig.avf.residualAvf(hs)));
        EXPECT_TRUE(
            sameBits(back.avf.occupancy(hs), orig.avf.occupancy(hs)));
        for (unsigned t = 0; t < 2; ++t)
            EXPECT_TRUE(
                sameBits(back.avf.threadAvf(hs, t), orig.avf.threadAvf(hs, t)));
    }
}

TEST(ReportRestore, ZeroInstructionRunRoundTrips)
{
    // A run that committed nothing (all-zero report, zero cycles, zero
    // IPC) is a legal journal record — e.g. a candidate rejected at
    // cycle 0. Restore must not divide by the zero cycle count.
    const std::uint64_t fp = 42;
    SimResult orig = hostileResult(1, 0);
    orig.avf = AvfReport::restore(1, 0, {}, {}, {}, {});

    std::string line = serializeRun(fp, orig);
    std::uint64_t fp2 = 0;
    SimResult back;
    ASSERT_TRUE(parseRun(line, fp2, back));
    EXPECT_EQ(back.totalCommitted, 0u);
    EXPECT_EQ(back.avf.cycles(), 0u);
    for (std::size_t s = 0; s < numHwStructs; ++s)
        EXPECT_EQ(back.avf.avf(static_cast<HwStruct>(s)), 0.0);
    EXPECT_EQ(serializeRun(fp, back), line);
}

TEST(ReportRestore, TruncatedRecordsRejected)
{
    SimResult orig = hostileResult(2, 500'000);
    std::string line = serializeRun(7, orig);

    // Every proper prefix must fail to parse — a torn O_APPEND write can
    // only ever truncate at the tail, and parseRun is the crash-safety
    // gate (docs/ROBUSTNESS.md).
    for (std::size_t cut = 0; cut < line.size(); cut += 7) {
        std::uint64_t fp = 0;
        SimResult r;
        EXPECT_FALSE(parseRun(line.substr(0, cut), fp, r))
            << "prefix of " << cut << " bytes parsed";
    }

    // Flipping any payload character breaks the CRC.
    for (std::size_t pos = line.find("fp="); pos < line.size(); pos += 11) {
        std::string bad = line;
        bad[pos] ^= 0x04;
        std::uint64_t fp = 0;
        SimResult r;
        EXPECT_FALSE(parseRun(bad, fp, r)) << "flip at " << pos << " parsed";
    }

    // Blank lines and comments are "malformed" by design.
    std::uint64_t fp = 0;
    SimResult r;
    EXPECT_FALSE(parseRun("", fp, r));
    EXPECT_FALSE(parseRun("# comment", fp, r));
}

} // namespace
} // namespace smtavf
