/**
 * @file
 * Campaign-level tests for the protection explorer and the campaign CSV:
 * exploration must be bit-identical for any worker count (the
 * bench_fig9_protection determinism contract), the Pareto frontier must
 * hold its guaranteed shape, a protection change must invalidate
 * journaled results on resume, and campaignCsv() must emit full-arity
 * rows for failed runs (the historical ragged-row bug).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "protect/explorer.hh"
#include "sim/journal.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

constexpr std::uint64_t kBudget = 3000;

ProtectionExplorer
smallExplorer(unsigned max_depth = 3)
{
    const auto &mix = findMix("2ctx-mix-A");
    return ProtectionExplorer(table1Config(mix.contexts), mix, kBudget,
                              max_depth);
}

void
expectSamePoint(const ProtectionPoint &a, const ProtectionPoint &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.protection.str(), b.protection.str());
    EXPECT_EQ(a.rawSer, b.rawSer); // bit-exact, not approximate
    EXPECT_EQ(a.residualSer, b.residualSer);
    EXPECT_EQ(a.areaOverhead, b.areaOverhead);
    EXPECT_EQ(a.energyOverhead, b.energyOverhead);
    EXPECT_EQ(a.ipc, b.ipc);
}

TEST(Explorer, BitIdenticalAcrossWorkerCounts)
{
    auto explorer = smallExplorer();
    CampaignRunner serial(1);
    auto a = explorer.explore(serial);
    CampaignRunner parallel(4);
    auto b = explorer.explore(parallel);

    ASSERT_EQ(a.priority, b.priority);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        SCOPED_TRACE(a.points[i].label);
        expectSamePoint(a.points[i], b.points[i]);
    }
    EXPECT_EQ(a.frontier, b.frontier);
    EXPECT_EQ(a.csv(), b.csv());
}

TEST(Explorer, FrontierShapeAndSerIdentities)
{
    auto explorer = smallExplorer();
    CampaignRunner pool(2);
    auto result = explorer.explore(pool);

    // Baseline first, then 3 schemes x depth candidates.
    ASSERT_FALSE(result.points.empty());
    EXPECT_EQ(result.points[0].label, "none");
    EXPECT_FALSE(result.points[0].protection.any());
    ASSERT_GE(result.priority.size(), 3u);
    EXPECT_EQ(result.points.size(), 1u + 3u * 3u);

    std::size_t protected_on_frontier = 0;
    for (auto i : result.frontier) {
        ASSERT_LT(i, result.points.size());
        if (result.points[i].protection.any())
            ++protected_on_frontier;
    }
    // The guaranteed shape: the unprotected point is non-dominated (zero
    // overhead) and at least three protected assignments survive.
    EXPECT_NE(std::find(result.frontier.begin(), result.frontier.end(),
                        std::size_t{0}),
              result.frontier.end());
    EXPECT_GE(protected_on_frontier, 3u);

    for (const auto &p : result.points) {
        SCOPED_TRACE(p.label);
        // The overlay never perturbs timing: every candidate reruns the
        // same workload, so raw SER and IPC match the baseline exactly.
        EXPECT_EQ(p.rawSer, result.points[0].rawSer);
        EXPECT_EQ(p.ipc, result.points[0].ipc);
        EXPECT_LE(p.residualSer, p.rawSer);
        if (!p.protection.any())
            EXPECT_EQ(p.residualSer, p.rawSer);
        else
            EXPECT_LT(p.residualSer, p.rawSer);
    }
}

TEST(Explorer, CandidatesCoverSchemesTimesDepth)
{
    std::vector<HwStruct> priority = {HwStruct::ROB, HwStruct::IQ,
                                      HwStruct::LsqTag};
    auto configs = ProtectionExplorer::candidates(priority, 500, 2);
    ASSERT_EQ(configs.size(), 3u * 2u); // 3 schemes x depth 2
    for (const auto &c : configs) {
        EXPECT_TRUE(c.any());
        EXPECT_EQ(c.scrubInterval, 500u);
        // Depth-k candidates protect a prefix of the priority list.
        EXPECT_NE(c.schemeFor(HwStruct::ROB), ProtScheme::None);
        EXPECT_EQ(c.schemeFor(HwStruct::LsqTag), ProtScheme::None);
    }
    // Depth never exceeds the priority list.
    EXPECT_EQ(ProtectionExplorer::candidates(priority, 500, 9).size(),
              3u * 3u);
}

TEST(Explorer, ParetoFrontierFiltersDominatedPoints)
{
    auto point = [](double ser, double area, double energy, double ipc) {
        ProtectionPoint p;
        p.residualSer = ser;
        p.areaOverhead = area;
        p.energyOverhead = energy;
        p.ipc = ipc;
        return p;
    };
    std::vector<ProtectionPoint> pts = {
        point(0.20, 0.00, 0.00, 1.0), // cheapest, worst SER: frontier
        point(0.10, 0.05, 0.04, 1.0), // strictly between: frontier
        point(0.10, 0.06, 0.05, 1.0), // dominated by [1]
        point(0.05, 0.12, 0.10, 1.0), // best SER, priciest: frontier
        point(0.20, 0.01, 0.01, 1.0), // dominated by [0]
    };
    auto frontier = ProtectionExplorer::paretoFrontier(pts);
    EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Explorer, ProtectionChangeInvalidatesJournaledRuns)
{
    auto path = ::testing::TempDir() + "protect-resume.journal";
    std::remove(path.c_str());

    std::vector<Experiment> exps;
    for (const char *name : {"2ctx-cpu-A", "2ctx-mix-A"})
        exps.push_back(makeExperiment(findMix(name),
                                      FetchPolicyKind::Icount, kBudget));

    CampaignRunner pool(2);
    CampaignOptions opt;
    opt.journalPath = path;
    ASSERT_TRUE(runTolerant(pool, exps, opt).allOk());

    // Re-key one experiment by protecting a structure; resume must
    // replay only the untouched one and honestly re-run the other.
    exps[1].cfg.protection.assign(HwStruct::IQ, ProtScheme::Secded);
    CampaignOptions ropt;
    ropt.journalPath = path;
    ropt.resume = true;
    auto resumed = runTolerant(pool, exps, ropt);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_TRUE(resumed.outcomes[0].fromJournal);
    EXPECT_FALSE(resumed.outcomes[1].fromJournal);
    EXPECT_GT(resumed.outcomes[1].result.avf.avf(HwStruct::IQ),
              resumed.outcomes[1].result.avf.residualAvf(HwStruct::IQ));
    std::remove(path.c_str());
}

// --- campaign CSV (the ragged-row regression) ---------------------------

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::size_t
commas(const std::string &line)
{
    return static_cast<std::size_t>(
        std::count(line.begin(), line.end(), ','));
}

TEST(CampaignCsv, EveryRowHasFullArity)
{
    std::vector<Experiment> exps;
    for (const char *name : {"2ctx-cpu-A", "2ctx-mix-A", "2ctx-mem-A"})
        exps.push_back(makeExperiment(findMix(name),
                                      FetchPolicyKind::Icount, kBudget));

    CampaignOptions opt;
    opt.retries = 0;
    opt.runFn = [](const Experiment &e, std::size_t i) -> SimResult {
        if (i == 1)
            throw std::runtime_error("exploded: stage 2, cause unknown");
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    ASSERT_FALSE(report.allOk());

    auto lines = splitLines(campaignCsv(exps, report));
    ASSERT_EQ(lines.size(), 1u + exps.size());

    // Header declares status, residual columns and the error cell.
    EXPECT_NE(lines[0].find("label,seed,status,attempts"),
              std::string::npos);
    EXPECT_NE(lines[0].find("residual_IQ"), std::string::npos);
    EXPECT_NE(lines[0].find(",error"), std::string::npos);

    // The bug this guards against: non-Ok rows used to stop after the
    // attempts column. Every row must now match the header's arity.
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_EQ(commas(lines[i]), commas(lines[0])) << lines[i];

    // The failed row carries its status and a comma-free error message.
    EXPECT_NE(lines[2].find(",failed,"), std::string::npos);
    EXPECT_NE(lines[2].find("exploded: stage 2; cause unknown"),
              std::string::npos);
    // Ok rows end with an empty error cell.
    EXPECT_EQ(lines[1].back(), ',');
}

TEST(CampaignCsv, MismatchedSizesAreFatal)
{
    std::vector<Experiment> exps = {makeExperiment(
        findMix("2ctx-cpu-A"), FetchPolicyKind::Icount, kBudget)};
    CampaignReport empty;
    ThrowGuard guard;
    EXPECT_THROW(campaignCsv(exps, empty), SimError);
}

} // namespace
} // namespace smtavf
