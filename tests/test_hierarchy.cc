/**
 * @file
 * Unit tests for the memory hierarchy: latencies, MSHR merging, delayed
 * fills, store-at-commit semantics.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace smtavf
{
namespace
{

MemConfig
table1Mem()
{
    return MemConfig{};
}

TEST(HierarchyTest, Dl1HitIsOneCycle)
{
    MemHierarchy h(table1Mem());
    h.dl1().fill(0x1000, 0, 0);
    h.dtlb().prefill(0x1000, 0);
    auto out = h.load(0, 0x1000, 4, 10);
    EXPECT_FALSE(out.l1Miss);
    EXPECT_EQ(out.ready, 11u);
}

TEST(HierarchyTest, L2HitPaysL2Latency)
{
    MemHierarchy h(table1Mem());
    h.l2().fill(0x1000, 0, 0);
    h.dtlb().prefill(0x1000, 0);
    auto out = h.load(0, 0x1000, 4, 10);
    EXPECT_TRUE(out.l1Miss);
    EXPECT_FALSE(out.l2Miss);
    EXPECT_EQ(out.ready, 10u + 12u);
}

TEST(HierarchyTest, FullMissPaysMemoryLatency)
{
    MemHierarchy h(table1Mem());
    h.dtlb().prefill(0x5000, 0);
    auto out = h.load(0, 0x5000, 4, 10);
    EXPECT_TRUE(out.l1Miss);
    EXPECT_TRUE(out.l2Miss);
    EXPECT_EQ(out.ready, 10u + 200u);
}

TEST(HierarchyTest, TlbMissAddsPenalty)
{
    MemHierarchy h(table1Mem());
    h.dl1().fill(0x1000, 0, 0);
    auto out = h.load(0, 0x1000, 4, 10);
    // First access to this page: TLB miss on top of the DL1 hit.
    EXPECT_TRUE(out.tlbMiss);
    EXPECT_EQ(out.ready, 11u + 200u);
    auto out2 = h.load(0, 0x1000, 4, 20);
    EXPECT_FALSE(out2.tlbMiss);
}

TEST(HierarchyTest, MshrMergesSameLine)
{
    MemHierarchy h(table1Mem());
    h.dtlb().prefill(0x5000, 0);
    auto a = h.load(0, 0x5000, 4, 10);
    auto b = h.load(0, 0x5008, 4, 15); // same 64B line, already in flight
    EXPECT_TRUE(b.l1Miss);
    EXPECT_EQ(b.ready, a.ready); // merged: same fill
}

TEST(HierarchyTest, DelayedFillLandsAfterLatency)
{
    MemHierarchy h(table1Mem());
    h.load(0, 0x5000, 4, 10);
    h.tick(100);
    EXPECT_FALSE(h.dl1().probe(0x5000)) << "fill must not land early";
    h.tick(210);
    EXPECT_TRUE(h.dl1().probe(0x5000));
    EXPECT_TRUE(h.l2().probe(0x5000));
}

TEST(HierarchyTest, SecondAccessAfterFillHits)
{
    MemHierarchy h(table1Mem());
    h.load(0, 0x5000, 4, 10);
    h.tick(210);
    auto out = h.load(0, 0x5000, 4, 220);
    EXPECT_FALSE(out.l1Miss);
}

TEST(HierarchyTest, L2MshrMergesAcrossL1Lines)
{
    MemHierarchy h(table1Mem());
    // Two different 64B DL1 lines inside the same 128B L2 line.
    h.dtlb().prefill(0x5000, 0);
    auto a = h.load(0, 0x5000, 4, 10);
    auto b = h.load(0, 0x5040, 4, 12);
    EXPECT_TRUE(a.l2Miss);
    EXPECT_TRUE(b.l2Miss);
    EXPECT_EQ(b.ready, a.ready); // merged at the L2 MSHR
}

TEST(HierarchyTest, StoreCommitWritesWhenFillLands)
{
    MemHierarchy h(table1Mem());
    auto out = h.storeCommit(0, 0x5000, 8, 10);
    EXPECT_TRUE(out.l1Miss);
    h.tick(out.ready);
    EXPECT_TRUE(h.dl1().probe(0x5000));
    // The line must be dirty: evicting it reports a writeback.
    struct DirtyProbe : CacheObserver
    {
        bool sawDirtyEvict = false;
        void onFill(std::uint32_t, Addr, ThreadId, Cycle) override {}
        void onAccess(std::uint32_t, Addr, std::uint32_t, bool, ThreadId,
                      Cycle) override
        {
        }
        void onEvict(std::uint32_t, bool dirty, Cycle) override
        {
            sawDirtyEvict |= dirty;
        }
    } probe;
    h.dl1().setObserver(&probe);
    h.dl1().flushAll(500);
    EXPECT_TRUE(probe.sawDirtyEvict);
}

TEST(HierarchyTest, FetchPathUsesIl1)
{
    MemHierarchy h(table1Mem());
    auto out = h.fetch(0, 0x400000, 10);
    EXPECT_TRUE(out.l1Miss);
    h.tick(out.ready);
    auto out2 = h.fetch(0, 0x400000, out.ready + 1);
    EXPECT_FALSE(out2.l1Miss);
    EXPECT_FALSE(out2.tlbMiss);
}

TEST(HierarchyTest, TranslateDataOnlyTouchesDtlb)
{
    MemHierarchy h(table1Mem());
    EXPECT_EQ(h.translateData(0, 0x9000, 10), 200u);
    EXPECT_EQ(h.translateData(0, 0x9000, 11), 0u);
    EXPECT_EQ(h.dl1().hits() + h.dl1().misses(), 0u);
}

TEST(HierarchyTest, FinalizeDrainsEverything)
{
    MemHierarchy h(table1Mem());
    h.load(0, 0x5000, 4, 10);
    h.storeCommit(0, 0x7000, 4, 11);
    h.finalize(50);
    EXPECT_EQ(h.outstandingDl1Misses(), 0u);
    EXPECT_FALSE(h.dl1().probe(0x5000)); // flushed after drain
}

TEST(HierarchyTest, ThreadsDoNotShareTlbEntries)
{
    MemHierarchy h(table1Mem());
    h.load(0, 0x1000, 4, 1);
    auto out = h.load(1, 0x1000, 4, 300);
    EXPECT_TRUE(out.tlbMiss);
}

TEST(HierarchyTest, MergedOpsApplyWhenFillLands)
{
    // Two loads and a store merge into one outstanding DL1 miss; when the
    // fill lands, the store's write must be applied (line ends up dirty).
    MemHierarchy h(table1Mem());
    h.dtlb().prefill(0x5000, 0);
    auto a = h.load(0, 0x5000, 4, 10);
    h.storeCommit(0, 0x5008, 4, 12);
    h.load(0, 0x5010, 4, 14);
    h.tick(a.ready);
    ASSERT_TRUE(h.dl1().probe(0x5000));

    struct DirtyProbe : CacheObserver
    {
        bool dirty = false;
        void onFill(std::uint32_t, Addr, ThreadId, Cycle) override {}
        void onAccess(std::uint32_t, Addr, std::uint32_t, bool, ThreadId,
                      Cycle) override
        {
        }
        void onEvict(std::uint32_t, bool d, Cycle) override { dirty |= d; }
    } probe;
    h.dl1().setObserver(&probe);
    h.dl1().flushAll(1000);
    EXPECT_TRUE(probe.dirty);
}

TEST(HierarchyTest, IndependentLinesMissIndependently)
{
    MemHierarchy h(table1Mem());
    h.dtlb().prefill(0x5000, 0);
    h.dtlb().prefill(0x9000, 0);
    auto a = h.load(0, 0x5000, 4, 10);
    auto b = h.load(0, 0x9000, 4, 11);
    EXPECT_EQ(a.ready, 210u);
    EXPECT_EQ(b.ready, 211u); // its own MSHR, its own latency
}

TEST(HierarchyTest, L1FillAfterL2FillHitsL2)
{
    // A second DL1 miss to a line whose L2 fill already landed pays only
    // the L2 latency.
    MemHierarchy h(table1Mem());
    h.dtlb().prefill(0x5000, 0);
    h.load(0, 0x5000, 4, 10); // to DRAM; L2 + DL1 fill at 210
    h.tick(210);
    // Evict the DL1 copy by filling conflicting lines in its set.
    Addr stride = h.dl1().numSets() * 64ull;
    for (int w = 0; w < 5; ++w)
        h.dl1().fill(0x5000 + (w + 1) * stride, 0, 211);
    ASSERT_FALSE(h.dl1().probe(0x5000));
    auto out = h.load(0, 0x5000, 4, 300);
    EXPECT_TRUE(out.l1Miss);
    EXPECT_FALSE(out.l2Miss);
    EXPECT_EQ(out.ready, 312u);
}

TEST(HierarchyTest, OutstandingMissCountTracksMshrs)
{
    MemHierarchy h(table1Mem());
    h.dtlb().prefill(0x5000, 0);
    h.dtlb().prefill(0x9000, 0);
    EXPECT_EQ(h.outstandingDl1Misses(), 0u);
    h.load(0, 0x5000, 4, 10);
    h.load(0, 0x9000, 4, 11);
    EXPECT_EQ(h.outstandingDl1Misses(), 2u);
    h.load(0, 0x5008, 4, 12); // merges
    EXPECT_EQ(h.outstandingDl1Misses(), 2u);
    h.tick(300);
    EXPECT_EQ(h.outstandingDl1Misses(), 0u);
}

} // namespace
} // namespace smtavf
