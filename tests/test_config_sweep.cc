/**
 * @file
 * Machine-configuration robustness: downstream users will change Table-1
 * parameters, so the model must stay sound across a wide geometry sweep
 * and reject inconsistent configurations loudly.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

SimResult
runWith(MachineConfig cfg, std::uint64_t budget = 8000)
{
    cfg.seed = 5;
    Simulator sim(cfg, findMix("2ctx-mix-A"));
    return sim.run(budget);
}

MachineConfig
base()
{
    return table1Config(2);
}

TEST(ConfigSweep, NarrowMachineStillWorks)
{
    auto cfg = base();
    cfg.fetchWidth = 2;
    cfg.decodeWidth = 2;
    cfg.issueWidth = 2;
    cfg.commitWidth = 2;
    cfg.fetchThreadsPerCycle = 1;
    auto r = runWith(cfg);
    EXPECT_GE(r.totalCommitted, 8000u);
    EXPECT_LT(r.ipc, 2.01) << "a 2-wide machine cannot beat IPC 2";
}

TEST(ConfigSweep, WiderMachineIsNotSlower)
{
    auto narrow = base();
    narrow.issueWidth = 2;
    narrow.commitWidth = 2;
    auto wide = base();
    EXPECT_GE(runWith(wide).ipc, runWith(narrow).ipc * 0.95);
}

TEST(ConfigSweep, TinyIqRaisesPressure)
{
    auto small = base();
    small.iqSize = 16;
    auto r = runWith(small);
    EXPECT_GE(r.totalCommitted, 8000u);
    // A 16-entry IQ saturates easily: occupancy well above the 96-entry
    // machine's fraction.
    auto big = runWith(base());
    EXPECT_GT(r.avf.occupancy(HwStruct::IQ),
              big.avf.occupancy(HwStruct::IQ));
}

TEST(ConfigSweep, TinyRobAndLsqWork)
{
    auto cfg = base();
    cfg.robSize = 16;
    cfg.lsqSize = 8;
    EXPECT_GE(runWith(cfg).totalCommitted, 8000u);
}

TEST(ConfigSweep, MinimalRegisterPoolWorks)
{
    auto cfg = base();
    cfg.intPhysRegs = 2 * 32 + 8; // bare committed state + tiny slack
    cfg.fpPhysRegs = 2 * 32 + 8;
    auto r = runWith(cfg);
    EXPECT_GE(r.totalCommitted, 8000u);
    EXPECT_LT(r.ipc, runWith(base()).ipc)
        << "starving rename must cost throughput";
}

TEST(ConfigSweep, SmallCachesWork)
{
    auto cfg = base();
    cfg.mem.dl1 = {"dl1", 8 * 1024, 2, 32, 1, 2};
    cfg.mem.il1 = {"il1", 8 * 1024, 2, 32, 1, 2};
    cfg.mem.l2 = {"l2", 256 * 1024, 4, 64, 12, 1};
    auto r = runWith(cfg);
    EXPECT_GE(r.totalCommitted, 8000u);
    EXPECT_GT(r.stats.get("dl1.missRate"), 0.0);
}

TEST(ConfigSweep, DeepFrontEndWorks)
{
    auto cfg = base();
    cfg.frontLatency = 10;
    cfg.fetchQueueSize = 32;
    auto r = runWith(cfg);
    EXPECT_GE(r.totalCommitted, 8000u);
    EXPECT_LT(r.ipc, runWith(base()).ipc * 1.05)
        << "a deeper front end cannot be faster";
}

TEST(ConfigSweep, SlowMemoryHurtsMemBoundWork)
{
    auto fast = base();
    fast.mem.memLatency = 50;
    auto slow = base();
    slow.mem.memLatency = 400;
    WorkloadMix mem{"memmix", 2, MixType::Mem, 'A', {"mcf", "swim"}};
    fast.seed = slow.seed = 3;
    Simulator a(fast, mem), b(slow, mem);
    EXPECT_GT(a.run(6000).ipc, b.run(6000).ipc);
}

TEST(ConfigSweep, RejectsZeroWidths)
{
    ThrowGuard guard;
    auto cfg = base();
    cfg.issueWidth = 0;
    EXPECT_THROW(cfg.validate(), SimError);
    cfg = base();
    cfg.fetchThreadsPerCycle = 0;
    EXPECT_THROW(cfg.validate(), SimError);
    cfg = base();
    cfg.iqSize = 0;
    EXPECT_THROW(cfg.validate(), SimError);
}

TEST(ConfigSweep, RejectsZeroContexts)
{
    ThrowGuard guard;
    auto cfg = base();
    cfg.contexts = 0;
    EXPECT_THROW(cfg.validate(), SimError);
    cfg.contexts = maxContexts + 1;
    EXPECT_THROW(cfg.validate(), SimError);
}

class GeometryMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GeometryMatrix, RunsAndObeysAvfBounds)
{
    auto [iq, rob, width] = GetParam();
    auto cfg = base();
    cfg.iqSize = static_cast<std::uint32_t>(iq);
    cfg.robSize = static_cast<std::uint32_t>(rob);
    cfg.fetchWidth = cfg.decodeWidth = cfg.issueWidth = cfg.commitWidth =
        static_cast<std::uint32_t>(width);
    auto r = runWith(cfg, 5000);
    EXPECT_GE(r.totalCommitted, 5000u);
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_LE(r.avf.avf(s), r.avf.occupancy(s) + 1e-9)
            << hwStructName(s);
        EXPECT_LE(r.avf.occupancy(s), 1.0 + 1e-9) << hwStructName(s);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeometryMatrix,
                         ::testing::Combine(::testing::Values(32, 96, 192),
                                            ::testing::Values(32, 96),
                                            ::testing::Values(4, 8)));

} // namespace
} // namespace smtavf
