/**
 * @file
 * Parameterized invariant sweep over every Table-2 workload mix: each mix
 * must run to budget with every model invariant intact.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace smtavf
{
namespace
{

class MixSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MixSweep, RunsWithAllInvariantsIntact)
{
    const auto &mix = findMix(GetParam());
    std::uint64_t budget = 4000ull * mix.contexts;
    auto r = runMix(mix, FetchPolicyKind::Icount, budget);

    // Progress and accounting.
    EXPECT_GE(r.totalCommitted, budget);
    std::uint64_t sum = 0;
    for (const auto &t : r.threads) {
        EXPECT_GT(t.committed, 0u) << t.benchmark << " starved";
        sum += t.committed;
    }
    EXPECT_EQ(sum, r.totalCommitted);
    EXPECT_GT(r.ipc, 0.0);

    // AVF bounds on every structure.
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_GE(r.avf.avf(s), 0.0) << hwStructName(s);
        EXPECT_LE(r.avf.avf(s), r.avf.occupancy(s) + 1e-9)
            << hwStructName(s);
        EXPECT_LE(r.avf.occupancy(s), 1.0 + 1e-9) << hwStructName(s);
    }

    // Thread contributions never exceed the aggregate for shared
    // structures (they sum to it exactly).
    for (auto s : {HwStruct::IQ, HwStruct::RegFile, HwStruct::FU}) {
        double sum_contrib = 0.0;
        for (ThreadId t = 0; t < mix.contexts; ++t)
            sum_contrib += r.avf.threadAvf(s, t);
        EXPECT_NEAR(sum_contrib, r.avf.avf(s), 1e-9) << hwStructName(s);
    }

    // The paper's structural relation that holds for every workload.
    EXPECT_GE(r.avf.avf(HwStruct::Dl1Tag), r.avf.avf(HwStruct::Dl1Data))
        << "tag bits all participate in every match";

    // Sanity of reported rates.
    EXPECT_LE(r.stats.get("dl1.missRate"), 1.0);
    EXPECT_LE(r.stats.get("branch.mispredictRate"), 0.5);
    EXPECT_LT(r.stats.get("deadCode.fraction"), 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    AllTable2Mixes, MixSweep,
    ::testing::Values("2ctx-cpu-A", "2ctx-cpu-B", "2ctx-mix-A",
                      "2ctx-mix-B", "2ctx-mem-A", "2ctx-mem-B",
                      "4ctx-cpu-A", "4ctx-cpu-B", "4ctx-mix-A",
                      "4ctx-mix-B", "4ctx-mem-A", "4ctx-mem-B",
                      "8ctx-cpu-A", "8ctx-cpu-B", "8ctx-mix-A",
                      "8ctx-mix-B", "8ctx-mem-A", "fig3-cpu", "fig3-mix",
                      "fig3-mem"));

class BenchmarkClassSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BenchmarkClassSweep, SoloRunMatchesDeclaredClass)
{
    // The paper classifies benchmarks by stand-alone IPC and miss rate;
    // each profile must land on its declared side of the divide.
    const auto &p = findProfile(GetParam());
    WorkloadMix solo{"class-check", 1,
                     p.category == BenchClass::Cpu ? MixType::Cpu
                                                   : MixType::Mem,
                     'A',
                     {p.name}};
    auto r = runMix(solo, FetchPolicyKind::Icount, 8000);
    if (p.category == BenchClass::Cpu) {
        EXPECT_GT(r.ipc, 0.7) << p.name << " too slow for CPU class";
        EXPECT_LT(r.stats.get("dl1.missRate"), 0.12) << p.name;
    } else {
        EXPECT_LT(r.ipc, 0.7) << p.name << " too fast for MEM class";
        EXPECT_GT(r.stats.get("dl1.missRate"), 0.05) << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkClassSweep,
    ::testing::Values("bzip2", "crafty", "eon", "gap", "gcc", "parser",
                      "perlbmk", "mcf", "twolf", "vpr", "facerec", "fma3d",
                      "galgel", "mesa", "wupwise", "applu", "equake",
                      "lucas", "mgrid", "swim"));

} // namespace
} // namespace smtavf
