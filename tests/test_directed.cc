/**
 * @file
 * Directed integration tests: custom profiles that force the pipeline into
 * known regimes and check the AVF/performance consequences analytically.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace smtavf
{
namespace
{

/** A minimal base profile we then bend per test. */
BenchmarkProfile
baseProfile(const char *name)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = BenchSuite::Int;
    p.category = BenchClass::Cpu;
    p.loadFrac = 0.2;
    p.storeFrac = 0.1;
    p.branchFrac = 0.1;
    p.jumpFrac = 0.01;
    p.nopFrac = 0.02;
    p.hotAccessFrac = 0.98;
    p.warmAccessFrac = 0.015;
    p.hotSetBytes = 8 * 1024;
    return p;
}

SimResult
runProfile(BenchmarkProfile p, unsigned contexts = 1,
           std::uint64_t budget = 10000)
{
    auto cfg = table1Config(contexts);
    std::vector<BenchmarkProfile> ps(contexts, p);
    Simulator sim(cfg, ps, p.name);
    return sim.run(budget);
}

TEST(Directed, NoBranchesMeansNoWrongPath)
{
    auto p = baseProfile("no-branches");
    p.branchFrac = 0.0;
    p.jumpFrac = 0.0;
    auto r = runProfile(p);
    EXPECT_EQ(r.stats.get("fetch.wrongPath"), 0.0);
    EXPECT_EQ(r.stats.get("squashed"), 0.0);
    EXPECT_EQ(r.stats.get("branch.mispredictRate"), 0.0);
}

TEST(Directed, NoMemoryOpsMeansNoLsqOrDl1Activity)
{
    auto p = baseProfile("no-mem");
    p.loadFrac = 0.0;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0; // wrong-path loads would touch the DL1 otherwise
    p.jumpFrac = 0.0;
    auto r = runProfile(p);
    EXPECT_EQ(r.avf.occupancy(HwStruct::LsqData), 0.0);
    EXPECT_EQ(r.avf.occupancy(HwStruct::LsqTag), 0.0);
    EXPECT_EQ(r.stats.get("dl1.missRate"), 0.0);
}

TEST(Directed, NopHeavyStreamHasMostlyUnAceOccupancy)
{
    auto p = baseProfile("nop-heavy");
    p.loadFrac = 0.0;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.jumpFrac = 0.0;
    p.nopFrac = 0.9;
    auto r = runProfile(p);
    // NOPs occupy the ROB but are un-ACE: AVF far below occupancy.
    EXPECT_LT(r.avf.avf(HwStruct::ROB),
              0.35 * r.avf.occupancy(HwStruct::ROB));
}

TEST(Directed, SerialChainBoundsIpcNearOne)
{
    auto p = baseProfile("serial");
    p.loadFrac = 0.0;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.jumpFrac = 0.0;
    p.nopFrac = 0.0;
    p.shortDepFrac = 1.0;    // every op reads the last two defs
    p.parallelChains = 1;    // a single dependence chain
    auto r = runProfile(p);
    // 1-cycle IntAlu chain: the machine cannot beat ~1 IPC by much, and
    // should get reasonably close to it.
    EXPECT_LT(r.ipc, 2.2);
    EXPECT_GT(r.ipc, 0.6);
}

TEST(Directed, MoreChainsMeanMoreIlp)
{
    auto serial = baseProfile("one-chain");
    serial.parallelChains = 1;
    serial.shortDepFrac = 0.8;
    auto wide = serial;
    wide.name = "six-chains";
    wide.parallelChains = 6;
    EXPECT_GT(runProfile(wide).ipc, runProfile(serial).ipc * 1.3);
}

TEST(Directed, ColdWorkloadSaturatesMemory)
{
    auto p = baseProfile("cold");
    p.hotAccessFrac = 0.05;
    p.warmAccessFrac = 0.05;
    p.coldSetBytes = 64ull * 1024 * 1024;
    p.stridedFrac = 0.0;
    p.category = BenchClass::Mem;
    auto r = runProfile(p, 1, 4000);
    EXPECT_GT(r.stats.get("dl1.missRate"), 0.3);
    EXPECT_LT(r.ipc, 0.5);
}

TEST(Directed, PureComputeKeepsFuBusy)
{
    auto p = baseProfile("compute");
    p.loadFrac = 0.0;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.jumpFrac = 0.0;
    p.nopFrac = 0.0;
    p.parallelChains = 8;
    p.shortDepFrac = 0.0;
    auto r = runProfile(p, 4, 40000);
    EXPECT_GT(r.ipc, 4.0) << "8 independent chains x 4 threads on an "
                             "8-wide machine";
    EXPECT_GT(r.avf.avf(HwStruct::FU), 0.15);
}

TEST(Directed, FpWorkloadUsesFpRegisters)
{
    auto p = baseProfile("fp-heavy");
    p.suite = BenchSuite::Fp;
    p.fpAluFrac = 0.3;
    p.fpMulFrac = 0.2;
    auto r = runProfile(p);
    EXPECT_GT(r.avf.occupancy(HwStruct::RegFile), 0.0);
    EXPECT_GE(r.totalCommitted, 10000u);
}

TEST(Directed, DeterministicAcrossPolicyOfUnrelatedKnobs)
{
    // The AVF ablation knobs must not change *timing*, only
    // classification: cycle counts stay identical.
    auto p = baseProfile("timing");
    auto cfg = table1Config(2);
    std::vector<BenchmarkProfile> ps{p, p};
    Simulator a(cfg, ps, "a");
    auto ra = a.run(10000);

    cfg.avf.deadCodeAnalysis = false;
    cfg.avf.perByteCacheAvf = false;
    cfg.avf.regAllocWindowUnace = false;
    Simulator b(cfg, ps, "b");
    auto rb = b.run(10000);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.totalCommitted, rb.totalCommitted);
}

TEST(Directed, WrongPathKnobChangesTimingButStaysDeterministic)
{
    auto p = baseProfile("wrongpath");
    auto cfg = table1Config(2);
    std::vector<BenchmarkProfile> ps{p, p};
    Simulator a(cfg, ps, "a");
    Simulator b(cfg, ps, "b");
    EXPECT_EQ(a.run(10000).cycles, b.run(10000).cycles);
}

TEST(Directed, PointerChaseBoundedByCacheLatency)
{
    // A single chain of hot-set loads feeding loads: steady-state IPC for
    // the loads cannot beat 1 per (1 + DL1 latency)-ish cycle chain step,
    // and with the load fraction diluted by independent filler the whole
    // stream still lands well under the machine width.
    auto p = baseProfile("chase");
    p.loadFrac = 0.5;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.jumpFrac = 0.0;
    p.nopFrac = 0.0;
    p.shortDepFrac = 1.0;
    p.parallelChains = 1;
    p.hotAccessFrac = 1.0;
    p.warmAccessFrac = 0.0;
    auto r = runProfile(p);
    EXPECT_LT(r.ipc, 1.6);
    EXPECT_GT(r.ipc, 0.3);
}

TEST(Directed, DivideHeavyStreamIsDividerBound)
{
    // 30% unpipelined 20-cycle divides on 4 divider units bound
    // throughput at ~4/20 per divide slot: IPC < (4/20) / 0.3 + epsilon.
    auto p = baseProfile("divides");
    p.loadFrac = 0.0;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.jumpFrac = 0.0;
    p.nopFrac = 0.0;
    p.intDivFrac = 0.3;
    p.parallelChains = 8;
    p.shortDepFrac = 0.0;
    auto r = runProfile(p, 1, 6000);
    EXPECT_LT(r.ipc, (4.0 / 20.0) / 0.3 * 1.15);
    EXPECT_GT(r.ipc, 0.2);
}

TEST(Directed, StoreHeavyStreamExercisesForwarding)
{
    auto p = baseProfile("stores");
    p.loadFrac = 0.25;
    p.storeFrac = 0.25;
    p.branchFrac = 0.0;
    p.jumpFrac = 0.0;
    p.hotAccessFrac = 1.0;
    p.warmAccessFrac = 0.0;
    p.hotSetBytes = 512; // tiny set: loads constantly hit recent stores
    auto r = runProfile(p);
    EXPECT_GE(r.totalCommitted, 10000u);
    EXPECT_GT(r.avf.avf(HwStruct::LsqData), 0.0);
    // Everything stays in the hot lines: no DL1 misses after prewarm.
    EXPECT_LT(r.stats.get("dl1.missRate"), 0.01);
}

TEST(Directed, TlbHostileStreamPaysTranslationPenalties)
{
    auto p = baseProfile("tlbstorm");
    p.branchFrac = 0.0;
    p.jumpFrac = 0.0;
    p.hotAccessFrac = 0.0;
    p.warmAccessFrac = 1.0;
    p.warmSetBytes = 64ull * 1024 * 1024; // far beyond DTLB reach
    p.stridedFrac = 1.0;
    p.strideBytes = 8192; // one access per page
    auto r = runProfile(p, 1, 4000);
    EXPECT_GT(r.stats.get("dtlb.missRate"), 0.5);
    EXPECT_LT(r.ipc, 0.6);
}

} // namespace
} // namespace smtavf
