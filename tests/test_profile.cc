/**
 * @file
 * Unit tests for benchmark profiles and the SPEC 2000 database.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "workload/profile.hh"

namespace smtavf
{
namespace
{

TEST(ProfileDb, HasTwentyBenchmarks)
{
    EXPECT_EQ(allProfiles().size(), 20u);
}

TEST(ProfileDb, FindKnownProfiles)
{
    EXPECT_EQ(findProfile("mcf").name, "mcf");
    EXPECT_EQ(findProfile("bzip2").suite, BenchSuite::Int);
    EXPECT_EQ(findProfile("swim").suite, BenchSuite::Fp);
}

TEST(ProfileDb, UnknownProfileIsFatal)
{
    ThrowGuard guard;
    EXPECT_THROW(findProfile("doom3"), SimError);
}

TEST(ProfileDb, CategoriesMatchThePaper)
{
    // The paper's CPU-intensive vs memory-intensive taxonomy.
    for (const char *cpu : {"bzip2", "eon", "perlbmk", "mesa", "gcc",
                            "facerec", "wupwise", "crafty", "gap",
                            "parser", "fma3d"})
        EXPECT_EQ(findProfile(cpu).category, BenchClass::Cpu) << cpu;
    for (const char *mem : {"mcf", "twolf", "vpr", "equake", "swim",
                            "applu", "lucas", "mgrid", "galgel"})
        EXPECT_EQ(findProfile(mem).category, BenchClass::Mem) << mem;
}

TEST(ProfileDb, MemClassHasColderAccessMix)
{
    // Every MEM-class profile sends more traffic outside the hot set than
    // every CPU-class profile: that is what the taxonomy means.
    double min_cpu_hot = 1.0, max_mem_hot = 0.0;
    for (const auto &p : allProfiles()) {
        if (p.category == BenchClass::Cpu)
            min_cpu_hot = std::min(min_cpu_hot, p.hotAccessFrac);
        else
            max_mem_hot = std::max(max_mem_hot, p.hotAccessFrac);
    }
    EXPECT_GT(min_cpu_hot, max_mem_hot);
}

class ProfileValidation : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ProfileValidation, DatabaseEntryValidates)
{
    const auto &p = findProfile(GetParam());
    EXPECT_NO_THROW(p.validate());
    EXPECT_LE(p.explicitMixSum(), 1.0 + 1e-9);
    EXPECT_GT(p.loadFrac, 0.0);
    EXPECT_GT(p.branchFrac, 0.0);
    EXPECT_GT(p.hotSetBytes, 0u);
    EXPECT_LE(p.hotAccessFrac + p.warmAccessFrac, 1.0);
    if (p.suite == BenchSuite::Fp) {
        EXPECT_GT(p.fpAluFrac + p.fpMulFrac, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ProfileValidation,
    ::testing::Values("bzip2", "crafty", "eon", "gap", "gcc", "parser",
                      "perlbmk", "mcf", "twolf", "vpr", "facerec", "fma3d",
                      "galgel", "mesa", "wupwise", "applu", "equake",
                      "lucas", "mgrid", "swim"));

TEST(ProfileValidate, RejectsOverfullMix)
{
    ThrowGuard guard;
    BenchmarkProfile p;
    p.name = "bad";
    p.loadFrac = 0.9;
    p.storeFrac = 0.9;
    EXPECT_THROW(p.validate(), SimError);
}

TEST(ProfileValidate, RejectsMissingName)
{
    ThrowGuard guard;
    BenchmarkProfile p;
    EXPECT_THROW(p.validate(), SimError);
}

TEST(ProfileValidate, RejectsBadFractions)
{
    ThrowGuard guard;
    BenchmarkProfile p;
    p.name = "bad";
    p.hotAccessFrac = 0.8;
    p.warmAccessFrac = 0.8;
    EXPECT_THROW(p.validate(), SimError);
}

TEST(ProfileValidate, RejectsZeroRegions)
{
    ThrowGuard guard;
    BenchmarkProfile p;
    p.name = "bad";
    p.hotSetBytes = 0;
    EXPECT_THROW(p.validate(), SimError);
}

TEST(ProfileValidate, RejectsBadChains)
{
    ThrowGuard guard;
    BenchmarkProfile p;
    p.name = "bad";
    p.parallelChains = 0;
    EXPECT_THROW(p.validate(), SimError);
    p.parallelChains = 9;
    EXPECT_THROW(p.validate(), SimError);
}

} // namespace
} // namespace smtavf
