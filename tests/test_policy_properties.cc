/**
 * @file
 * Differential/property harness for the protection-aware fetch throttle
 * (policy/prat.hh) against its base policy RAT. Four property classes:
 *
 *  (a) **All-none equivalence** — with nothing protected every PRAT
 *      weight is exactly 256/256, so fetch orders are bit-identical to
 *      RAT's for any seed and context count (scripted contexts), and a
 *      whole simulation serializes to the identical journal record
 *      (policy-name token masked).
 *  (b) **Full-SECDED degeneracy** — with everything under SECDED the
 *      weight floors at 1/256 and the gate threshold leaves any
 *      reachable correct-path population unthrottled: PRAT degenerates
 *      to the base sort order and its throttle duty cycle stays zero.
 *  (c) **Coverage monotonicity** — replaying one identical context
 *      script under progressively stronger protection never increases
 *      the throttle duty cycle (weights only shrink as coverage grows).
 *  (d) **Execution-shape invariance** — a PRAT campaign's serialized
 *      journal records are byte-identical across worker counts and
 *      across thread- vs. process-isolated execution.
 *
 * Plus the committed golden fixture tests/data/prat_golden.journal: a
 * fixed two-experiment PRAT campaign journaled through the production
 * `run v3` writer must reproduce it byte for byte (regenerate with
 * SMTAVF_REGEN_GOLDEN=1), pinning the PRAT experiment fingerprint
 * fields and the wire format at once.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "avf/ledger.hh"
#include "base/rng.hh"
#include "ckpt/serializer.hh"
#include "policy/prat.hh"
#include "policy/rat.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"

namespace smtavf
{
namespace
{

/**
 * Scripted core-state stub with the protection-facing surface PRAT
 * reads: per-structure occupancy, a protection assignment and
 * (optionally) an AVF ledger for the epoch-refreshed correction.
 */
class FakeContext : public PolicyContext
{
  public:
    explicit FakeContext(unsigned n) : n_(n) {}

    unsigned numThreads() const override { return n_; }
    unsigned inFlightCount(ThreadId t) const override { return icount[t]; }
    unsigned
    inFlightCorrectPath(ThreadId t) const override
    {
        return icount[t] > wrongPath[t] ? icount[t] - wrongPath[t] : 0;
    }
    unsigned outstandingL1D(ThreadId) const override { return 0; }
    unsigned outstandingL2D(ThreadId) const override { return 0; }
    void flushAfter(ThreadId, SeqNum) override {}

    unsigned
    structOccupancy(HwStruct s, ThreadId t) const override
    {
        return occ[static_cast<std::size_t>(s)][t];
    }
    const ProtectionConfig *protectionConfig() const override
    {
        return &protection;
    }
    const AvfLedger *avfLedger() const override { return ledger; }

    std::array<unsigned, maxContexts> icount{};
    std::array<unsigned, maxContexts> wrongPath{};
    std::array<std::array<unsigned, maxContexts>, numHwStructs> occ{};
    ProtectionConfig protection;
    const AvfLedger *ledger = nullptr;

  private:
    unsigned n_;
};

/** Randomize the scripted state for one cycle. */
void
randomizeCycle(FakeContext &ctx, unsigned n, Rng &rng)
{
    for (unsigned t = 0; t < n; ++t) {
        ctx.icount[t] = static_cast<unsigned>(rng.uniform(120));
        ctx.wrongPath[t] =
            static_cast<unsigned>(rng.uniform(ctx.icount[t] + 1));
        for (std::size_t s = 0; s < numHwStructs; ++s)
            ctx.occ[s][t] = static_cast<unsigned>(rng.uniform(97));
    }
}

// ---------------------------------------------------------------------------
// (a) All-none: PRAT's fetch orders are bit-identical to RAT's for any
// seed and context count — occupancies and epoch refreshes included.
TEST(PolicyProperties, AllNoneFetchOrdersBitIdenticalToRat)
{
    for (unsigned n : {1u, 2u, 3u, 4u, 8u}) {
        for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
            SCOPED_TRACE("contexts=" + std::to_string(n) +
                         " seed=" + std::to_string(seed));
            FakeContext ctx(n); // protection defaults to all-none
            RatPolicy rat(ctx);
            PRatPolicy prat(ctx, /*ace_cap=*/0, /*epoch=*/64);
            ASSERT_EQ(prat.aceCap(), rat.aceCap());

            Rng rng(seed);
            for (Cycle now = 0; now < 512; ++now) {
                randomizeCycle(ctx, n, rng);
                ASSERT_EQ(prat.fetchOrder(now), rat.fetchOrder(now))
                    << "diverged at cycle " << now;
            }
        }
    }
}

// (a) at the simulation level: an unprotected PRAT run serializes to the
// byte-identical `run v3` journal record as RAT's (policy name masked —
// it is the one field that legitimately differs).
TEST(PolicyProperties, AllNoneRunRecordMatchesRat)
{
    const auto &mix = findMix("2ctx-mix-A");
    auto cfg = table1Config(mix.contexts);
    cfg.fetchPolicy = FetchPolicyKind::Rat;
    auto rat = runMix(cfg, mix, /*budget=*/20000);
    cfg.fetchPolicy = FetchPolicyKind::PRat;
    auto prat = runMix(cfg, mix, /*budget=*/20000);

    EXPECT_STREQ(prat.policyName.c_str(), "PRAT");
    prat.policyName = rat.policyName;
    EXPECT_EQ(serializeRun(0, prat), serializeRun(0, rat));
}

// ---------------------------------------------------------------------------
// (b) Full SECDED: the weight floors at 1/256, the gate threshold
// (cap * 256) exceeds any reachable correct-path population, and PRAT
// degenerates to the base sort order without ever throttling.
TEST(PolicyProperties, FullSecdedNeverThrottles)
{
    for (unsigned n : {2u, 4u, 8u}) {
        SCOPED_TRACE("contexts=" + std::to_string(n));
        FakeContext ctx(n);
        ctx.protection = uniformProtection(ProtScheme::Secded);
        RatPolicy rat(ctx);
        PRatPolicy prat(ctx);

        Rng rng(99);
        for (Cycle now = 0; now < 512; ++now) {
            randomizeCycle(ctx, n, rng);
            // Crank the populations well past the RAT cap: RAT throttles,
            // PRAT must not.
            for (unsigned t = 0; t < n; ++t) {
                ctx.icount[t] += 500;
                ctx.wrongPath[t] = 0;
            }
            auto order = prat.fetchOrder(now);
            ASSERT_EQ(order.size(), n) << "throttled at cycle " << now;
            // Base ordering: RAT's rank (its gate trips for everyone, so
            // its fallback order is exactly the ungated sort).
            EXPECT_EQ(order, rat.fetchOrder(now));
            for (unsigned t = 0; t < n; ++t)
                EXPECT_EQ(prat.weight256(static_cast<ThreadId>(t)), 1u);
        }
        EXPECT_EQ(prat.throttledThreadCycles(), 0u);
    }
}

// (b) with the measured correction active: a ledger whose tallies conserve
// covered + residual == ACE under full SECDED keeps corr256 at the floor,
// so epoch refreshes never resurrect the throttle.
TEST(PolicyProperties, FullSecdedLedgerCorrectionStaysFloored)
{
    constexpr unsigned n = 2;
    FakeContext ctx(n);
    ctx.protection = uniformProtection(ProtScheme::Secded);

    AvfLedger ledger(n);
    for (std::size_t s = 0; s < numHwStructs; ++s)
        ledger.setStructureBits(static_cast<HwStruct>(s), 1 << 16);
    ledger.setProtection(ctx.protection);
    for (ThreadId t = 0; t < n; ++t) {
        ledger.addInterval(HwStruct::IQ, t, 64, 0, 1000, /*ace=*/true);
        ledger.addInterval(HwStruct::ROB, t, 64, 0, 1000, /*ace=*/true);
    }
    ctx.ledger = &ledger;

    PRatPolicy prat(ctx, /*ace_cap=*/0, /*epoch=*/16);
    Rng rng(5);
    for (Cycle now = 0; now < 256; ++now) {
        randomizeCycle(ctx, n, rng);
        prat.fetchOrder(now);
    }
    EXPECT_EQ(prat.throttledThreadCycles(), 0u);
    for (ThreadId t = 0; t < n; ++t)
        EXPECT_EQ(prat.corr256(t), 1u)
            << "SECDED residual 1/256 must floor the correction";
}

// ---------------------------------------------------------------------------
// (c) Monotonicity: replaying one identical script under progressively
// stronger coverage never increases the throttle duty cycle.
TEST(PolicyProperties, RaisingCoverageNeverRaisesThrottleDutyCycle)
{
    auto assignLadder = [](unsigned rung) {
        ProtectionConfig p;
        if (rung >= 1) {
            p.assign(HwStruct::IQ, ProtScheme::Parity);
            p.assign(HwStruct::ROB, ProtScheme::Parity);
        }
        if (rung >= 2) {
            p.assign(HwStruct::IQ, ProtScheme::Secded);
            p.assign(HwStruct::ROB, ProtScheme::Secded);
        }
        if (rung >= 3)
            p = uniformProtection(ProtScheme::Secded);
        return p;
    };

    for (std::uint64_t seed : {3ull, 17ull, 4242ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        std::uint64_t prev = ~0ull;
        for (unsigned rung = 0; rung < 4; ++rung) {
            FakeContext ctx(4);
            ctx.protection = assignLadder(rung);
            PRatPolicy prat(ctx, /*ace_cap=*/24);
            Rng rng(seed); // identical script every rung
            for (Cycle now = 0; now < 1024; ++now) {
                randomizeCycle(ctx, 4, rng);
                prat.fetchOrder(now);
            }
            EXPECT_LE(prat.throttledThreadCycles(), prev)
                << "rung " << rung << " throttled more than rung "
                << rung - 1;
            prev = prat.throttledThreadCycles();
        }
        EXPECT_EQ(prev, 0u) << "full SECDED rung must never throttle";
    }
}

// ---------------------------------------------------------------------------
// (d) Checkpoint hooks across ALL fetch policies: a policy restored from
// saveState bytes makes bit-identical decisions on the same scripted
// future, and reset() returns a used policy to the freshly-built state —
// the worker-reuse contract. Only the fetchOrder surface is scripted
// here; hook-driven internals (miss-predictor tables, flush gates) are
// pinned end-to-end by the checkpoint differential matrix
// (tests/test_ckpt_diff.cc).
TEST(PolicyProperties, SaveLoadRoundTripAndResetAcrossAllPolicies)
{
    constexpr FetchPolicyKind kKinds[] = {
        FetchPolicyKind::RoundRobin, FetchPolicyKind::Icount,
        FetchPolicyKind::Flush,      FetchPolicyKind::Stall,
        FetchPolicyKind::Dg,         FetchPolicyKind::Pdg,
        FetchPolicyKind::DWarn,      FetchPolicyKind::PStall,
        FetchPolicyKind::Rat,        FetchPolicyKind::PRat,
    };
    for (FetchPolicyKind kind : kKinds) {
        SCOPED_TRACE(fetchPolicyName(kind));
        FakeContext ctx(4);
        std::string err;
        ASSERT_TRUE(parseAssignment("iq=secded,lsqdata=parity",
                                    ctx.protection, err))
            << err;
        FetchPolicyTuning tuning;
        tuning.pratEpoch = 32;
        tuning.pratCap = 24;

        auto a = makeFetchPolicy(kind, ctx, tuning);
        Rng warm(0xfeedULL + static_cast<std::uint64_t>(kind));
        for (Cycle now = 1; now <= 256; ++now) {
            randomizeCycle(ctx, 4, warm);
            a->fetchOrder(now);
        }

        Serializer ser;
        a->saveState(ser);
        auto b = makeFetchPolicy(kind, ctx, tuning);
        Deserializer des(ser.buffer());
        b->loadState(des);
        EXPECT_TRUE(des.exhausted());

        // Same scripted future, same decisions — epoch schedules and
        // accumulated corrections included.
        Rng future(0xbeefULL + static_cast<std::uint64_t>(kind));
        for (Cycle now = 257; now <= 512; ++now) {
            randomizeCycle(ctx, 4, future);
            EXPECT_EQ(a->fetchOrder(now), b->fetchOrder(now))
                << "cycle " << now;
        }

        // reset() must be indistinguishable from fresh construction.
        auto fresh = makeFetchPolicy(kind, ctx, tuning);
        b->reset();
        Rng replay(0x5eedULL + static_cast<std::uint64_t>(kind));
        for (Cycle now = 1; now <= 256; ++now) {
            randomizeCycle(ctx, 4, replay);
            EXPECT_EQ(b->fetchOrder(now), fresh->fetchOrder(now))
                << "cycle " << now;
        }
    }
}

// ---------------------------------------------------------------------------
// (e) Execution-shape invariance. One protected PRAT campaign, serialized
// record by record with the production writer; every execution shape must
// produce the same bytes.
std::vector<Experiment>
pratCampaign()
{
    std::vector<Experiment> exps;
    auto add = [&](const char *mix_name, std::uint32_t cap,
                   const char *assign) {
        const auto &mix = findMix(mix_name);
        Experiment e;
        e.label = std::string(mix_name) + "/PRAT";
        e.cfg = table1Config(mix.contexts);
        e.cfg.fetchPolicy = FetchPolicyKind::PRat;
        e.cfg.pratCap = cap;
        e.cfg.pratEpoch = 1024;
        if (assign && *assign) {
            std::string err;
            ASSERT_TRUE(parseAssignment(assign, e.cfg.protection, err))
                << err;
        }
        e.mix = mix;
        e.budget = 12000;
        exps.push_back(std::move(e));
    };
    add("2ctx-mix-A", 12, "iq=secded,rob=secded");
    add("2ctx-mem-A", 24, "iq=parity,lsqdata=secded");
    add("2ctx-cpu-A", 0, "");
    return exps;
}

std::vector<std::string>
serializeAll(const std::vector<Experiment> &exps,
             const std::vector<SimResult> &results)
{
    std::vector<std::string> out;
    for (std::size_t i = 0; i < results.size(); ++i)
        out.push_back(
            serializeRun(experimentFingerprint(exps[i]), results[i]));
    return out;
}

TEST(PolicyProperties, JournalRecordsInvariantAcrossWorkerCounts)
{
    auto exps = pratCampaign();
    CampaignRunner serial(1), wide(4);
    auto a = serializeAll(exps, serial.run(exps));
    auto b = serializeAll(exps, wide.run(exps));
    ASSERT_EQ(a.size(), exps.size());
    EXPECT_EQ(a, b);
}

TEST(PolicyProperties, JournalRecordsInvariantAcrossIsolationModes)
{
    auto exps = pratCampaign();
    CampaignRunner pool(2);

    CampaignOptions thread_opt;
    thread_opt.isolate = IsolateMode::Thread;
    auto thread_report = runTolerant(pool, exps, thread_opt);
    ASSERT_TRUE(thread_report.allOk()) << thread_report.failureReport();

    CampaignOptions process_opt;
    process_opt.isolate = IsolateMode::Process;
    auto process_report = runTolerant(pool, exps, process_opt);
    ASSERT_TRUE(process_report.allOk()) << process_report.failureReport();

    for (std::size_t i = 0; i < exps.size(); ++i) {
        SCOPED_TRACE(exps[i].label);
        auto fp = experimentFingerprint(exps[i]);
        EXPECT_EQ(serializeRun(fp, *thread_report.results()[i]),
                  serializeRun(fp, *process_report.results()[i]));
    }
}

// ---------------------------------------------------------------------------
// Golden fixture: the campaign above journaled through the production
// `run v3` writer (one worker: append order == submission order) must
// reproduce tests/data/prat_golden.journal byte for byte. Pins the PRAT
// experiment-fingerprint fields (policy, pratEpoch, pratCap, protection)
// and the wire format in one committed artifact.
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(PolicyProperties, GoldenJournalMatchesFixture)
{
    auto exps = pratCampaign();
    auto path = ::testing::TempDir() + "prat-golden.journal";
    std::remove(path.c_str());

    CampaignRunner pool(1);
    CampaignOptions opt;
    opt.journalPath = path;
    auto report = runTolerant(pool, exps, opt);
    ASSERT_TRUE(report.allOk()) << report.failureReport();

    std::string journal = slurp(path);
    std::remove(path.c_str());
    ASSERT_FALSE(journal.empty());

    const std::string fixture =
        std::string(SMTAVF_TEST_DATA_DIR) + "/prat_golden.journal";
    if (std::getenv("SMTAVF_REGEN_GOLDEN")) {
        std::ofstream out(fixture, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << fixture;
        out << journal;
        GTEST_SKIP() << "regenerated " << fixture;
    }

    std::string want = slurp(fixture);
    ASSERT_FALSE(want.empty()) << "missing fixture " << fixture
                               << "; run once with SMTAVF_REGEN_GOLDEN=1";
    if (journal != want) {
        std::istringstream a(want), b(journal);
        std::string la, lb;
        std::size_t line = 0;
        while (true) {
            ++line;
            bool ha = static_cast<bool>(std::getline(a, la));
            bool hb = static_cast<bool>(std::getline(b, lb));
            if (!ha && !hb)
                break;
            if (!ha || !hb || la != lb) {
                FAIL() << "journal differs from fixture at line " << line
                       << "\n  fixture: "
                       << (ha ? la : std::string("<eof>")) << "\n  got:     "
                       << (hb ? lb : std::string("<eof>"))
                       << "\nrerun with SMTAVF_REGEN_GOLDEN=1 to bless an "
                          "intentional change";
            }
        }
        FAIL() << "journal differs from fixture (whitespace only?)";
    }
}

// The fixture resumes: replaying the campaign against the committed
// journal satisfies every run without re-simulating — the committed
// bytes double as a PRAT fingerprint-stability check (a fingerprint
// drift would miss the journal and re-run).
TEST(PolicyProperties, GoldenJournalResumesWithoutResimulating)
{
    const std::string fixture =
        std::string(SMTAVF_TEST_DATA_DIR) + "/prat_golden.journal";
    auto bytes = slurp(fixture);
    if (bytes.empty())
        GTEST_SKIP() << "fixture not generated yet";

    auto copy = ::testing::TempDir() + "prat-golden-resume.journal";
    {
        std::ofstream out(copy, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good());
        out << bytes;
    }

    auto exps = pratCampaign();
    CampaignRunner pool(2);
    CampaignOptions opt;
    opt.journalPath = copy;
    opt.resume = true;
    auto fresh = pool.run(exps);
    auto report = runTolerant(pool, exps, opt);
    std::remove(copy.c_str());
    ASSERT_TRUE(report.allOk()) << report.failureReport();
    for (std::size_t i = 0; i < exps.size(); ++i) {
        SCOPED_TRACE(exps[i].label);
        auto fp = experimentFingerprint(exps[i]);
        EXPECT_EQ(serializeRun(fp, *report.results()[i]),
                  serializeRun(fp, fresh[i]));
    }
}

} // namespace
} // namespace smtavf
