/**
 * @file
 * Directed stress tests of the squash machinery: mispredict recovery,
 * FLUSH-during-wrong-path, and their interaction — the hairiest control
 * paths in the core (SmtCore::squashAfter / recomputeFetchState).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace smtavf
{
namespace
{

/** Branch-heavy, unpredictable, memory-hostile: maximal squash traffic. */
BenchmarkProfile
stressProfile(const char *name)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = BenchSuite::Int;
    p.category = BenchClass::Mem;
    p.loadFrac = 0.30;
    p.storeFrac = 0.10;
    p.branchFrac = 0.18;
    p.jumpFrac = 0.03;
    p.branchEntropy = 0.6; // mispredict storm
    p.takenRate = 0.5;
    p.hotAccessFrac = 0.30;
    p.warmAccessFrac = 0.25;
    p.hotSetBytes = 16 * 1024;
    p.coldSetBytes = 64ull * 1024 * 1024;
    p.stridedFrac = 0.05;
    p.shortDepFrac = 0.5;
    p.parallelChains = 2;
    return p;
}

SimResult
runStress(FetchPolicyKind policy, unsigned contexts,
          std::uint64_t budget = 15000, std::uint64_t seed = 1)
{
    auto cfg = table1Config(contexts);
    cfg.fetchPolicy = policy;
    cfg.seed = seed;
    std::vector<BenchmarkProfile> ps(contexts, stressProfile("stress"));
    Simulator sim(cfg, ps, "stress");
    return sim.run(budget);
}

TEST(SquashInterplay, MispredictStormRunsToCompletion)
{
    auto r = runStress(FetchPolicyKind::Icount, 2);
    EXPECT_GE(r.totalCommitted, 15000u);
    // The storm must actually be a storm for the test to mean anything.
    EXPECT_GT(r.stats.get("branch.mispredictRate"), 0.15);
    EXPECT_GT(r.stats.get("fetch.wrongPath"), 5000.0);
}

TEST(SquashInterplay, FlushDuringWrongPathIsSound)
{
    // FLUSH squashes mid-wrong-path constantly here: L2 misses from both
    // correct-path and wrong-path loads trigger flushAfter while
    // unresolved mispredicted branches are in flight.
    auto r = runStress(FetchPolicyKind::Flush, 2);
    EXPECT_GE(r.totalCommitted, 15000u);
    EXPECT_GT(r.stats.get("squashed"), r.stats.get("fetch.wrongPath"))
        << "FLUSH must squash correct-path work too";
}

TEST(SquashInterplay, FlushStormIsDeterministic)
{
    auto a = runStress(FetchPolicyKind::Flush, 2);
    auto b = runStress(FetchPolicyKind::Flush, 2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.get("squashed"), b.stats.get("squashed"));
    EXPECT_DOUBLE_EQ(a.avf.avf(HwStruct::IQ), b.avf.avf(HwStruct::IQ));
}

class SquashStressSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SquashStressSweep, EveryPolicyAndWidthSurvivesTheStorm)
{
    auto policy = static_cast<FetchPolicyKind>(std::get<0>(GetParam()));
    auto contexts = static_cast<unsigned>(std::get<1>(GetParam()));
    auto r = runStress(policy, contexts, 8000 * contexts, 99);
    EXPECT_GE(r.totalCommitted, 8000u * contexts);
    for (const auto &t : r.threads)
        EXPECT_GT(t.committed, 0u);
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_LE(r.avf.avf(s), r.avf.occupancy(s) + 1e-9)
            << hwStructName(s);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByContexts, SquashStressSweep,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(FetchPolicyKind::Icount),
                          static_cast<int>(FetchPolicyKind::Flush),
                          static_cast<int>(FetchPolicyKind::Stall),
                          static_cast<int>(FetchPolicyKind::Pdg),
                          static_cast<int>(FetchPolicyKind::PStall)),
        ::testing::Values(1, 2, 4)));

TEST(SquashInterplay, WrongPathNeverCommits)
{
    // Wrong-path instructions must never retire: the committed count per
    // thread can never exceed the correct-path stream position, which the
    // generator's retireBelow asserts internally — and dead/wrong-path
    // accounting must stay consistent.
    auto r = runStress(FetchPolicyKind::Icount, 2, 20000);
    // Under ICOUNT only wrong-path work is ever squashed, and wrong-path
    // work only leaves the machine by being squashed — so the two counts
    // differ by at most the in-flight population left at the end of the
    // run (front queues + ROBs of two contexts).
    double squashed = r.stats.get("squashed");
    double wrong = r.stats.get("fetch.wrongPath");
    EXPECT_LE(squashed, wrong);
    EXPECT_LE(wrong - squashed, 2.0 * (16 + 96));
}

TEST(SquashInterplay, IqPartitionSurvivesTheStorm)
{
    auto cfg = table1Config(4);
    cfg.fetchPolicy = FetchPolicyKind::Flush;
    cfg.iqPartitioned = true;
    std::vector<BenchmarkProfile> ps(4, stressProfile("stress"));
    Simulator sim(cfg, ps, "stress-part");
    auto r = sim.run(30000);
    EXPECT_GE(r.totalCommitted, 30000u);
}

} // namespace
} // namespace smtavf
