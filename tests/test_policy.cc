/**
 * @file
 * Unit tests for the six fetch policies against a scripted PolicyContext.
 */

#include <gtest/gtest.h>

#include <array>

#include "policy/dg.hh"
#include "policy/dwarn.hh"
#include "policy/flush.hh"
#include "policy/icount.hh"
#include "policy/pdg.hh"
#include "policy/prat.hh"
#include "policy/pstall.hh"
#include "policy/rat.hh"
#include "policy/round_robin.hh"
#include "policy/stall.hh"

namespace smtavf
{
namespace
{

/** Scripted core-state stub. */
class FakeContext : public PolicyContext
{
  public:
    explicit FakeContext(unsigned n) : n_(n) {}

    unsigned numThreads() const override { return n_; }
    unsigned inFlightCount(ThreadId t) const override { return icount[t]; }
    unsigned
    inFlightCorrectPath(ThreadId t) const override
    {
        return icount[t] > wrongPath[t] ? icount[t] - wrongPath[t] : 0;
    }
    unsigned outstandingL1D(ThreadId t) const override { return l1[t]; }
    unsigned outstandingL2D(ThreadId t) const override { return l2[t]; }

    void
    flushAfter(ThreadId tid, SeqNum seq) override
    {
        flushedTid = tid;
        flushedSeq = seq;
        ++flushCalls;
    }

    std::array<unsigned, maxContexts> icount{};
    std::array<unsigned, maxContexts> wrongPath{};
    std::array<unsigned, maxContexts> l1{};
    std::array<unsigned, maxContexts> l2{};
    ThreadId flushedTid = invalidThread;
    SeqNum flushedSeq = 0;
    int flushCalls = 0;

  private:
    unsigned n_;
};

InstPtr
makeLoad(ThreadId tid, SeqNum seq, Addr pc)
{
    auto in = std::make_shared<DynInstr>();
    in->tid = tid;
    in->seq = seq;
    in->pc = pc;
    in->op = OpClass::Load;
    return in;
}

TEST(IcountPolicyTest, OrdersByInFlightCount)
{
    FakeContext ctx(3);
    ctx.icount = {5, 1, 3};
    IcountPolicy p(ctx);
    auto order = p.fetchOrder(0);
    EXPECT_EQ(order, (std::vector<ThreadId>{1, 2, 0}));
}

TEST(IcountPolicyTest, StableOnTies)
{
    FakeContext ctx(3);
    ctx.icount = {2, 2, 2};
    IcountPolicy p(ctx);
    EXPECT_EQ(p.fetchOrder(0), (std::vector<ThreadId>{0, 1, 2}));
}

TEST(RoundRobinPolicyTest, RotatesWithCycle)
{
    FakeContext ctx(3);
    RoundRobinPolicy p(ctx);
    EXPECT_EQ(p.fetchOrder(0)[0], 0);
    EXPECT_EQ(p.fetchOrder(1)[0], 1);
    EXPECT_EQ(p.fetchOrder(2)[0], 2);
    EXPECT_EQ(p.fetchOrder(3)[0], 0);
}

TEST(StallPolicyTest, GatesL2MissingThreads)
{
    FakeContext ctx(3);
    ctx.l2 = {0, 2, 0};
    StallPolicy p(ctx);
    auto order = p.fetchOrder(0);
    EXPECT_EQ(order, (std::vector<ThreadId>{0, 2}));
}

TEST(StallPolicyTest, NeverSilencesEveryone)
{
    FakeContext ctx(2);
    ctx.l2 = {1, 1};
    ctx.icount = {4, 2};
    StallPolicy p(ctx);
    auto order = p.fetchOrder(0);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1) << "falls back to ICOUNT order";
}

TEST(DgPolicyTest, GatesAtThreshold)
{
    FakeContext ctx(3);
    ctx.l1 = {0, 1, 2};
    DgPolicy p(ctx, 2);
    auto order = p.fetchOrder(0);
    EXPECT_EQ(order, (std::vector<ThreadId>{0, 1}));
}

TEST(DgPolicyTest, FallsBackWhenAllGated)
{
    FakeContext ctx(2);
    ctx.l1 = {3, 3};
    DgPolicy p(ctx, 2);
    EXPECT_EQ(p.fetchOrder(0).size(), 2u);
}

TEST(DWarnPolicyTest, DeprioritizesButNeverGates)
{
    FakeContext ctx(4);
    ctx.icount = {1, 2, 3, 4};
    ctx.l1 = {1, 0, 0, 0};
    ctx.l2 = {0, 0, 1, 0};
    DWarnPolicy p(ctx);
    auto order = p.fetchOrder(0);
    ASSERT_EQ(order.size(), 4u);
    // Clean threads (1, 3) first by icount, then warned threads (0, 2).
    EXPECT_EQ(order, (std::vector<ThreadId>{1, 3, 0, 2}));
}

TEST(FlushPolicyTest, L2MissTriggersFlushAndGate)
{
    FakeContext ctx(2);
    FlushPolicy p(ctx);
    auto load = makeLoad(1, 42, 0x100);
    p.onLoadIssued(load, true, true);
    EXPECT_EQ(ctx.flushCalls, 1);
    EXPECT_EQ(ctx.flushedTid, 1);
    EXPECT_EQ(ctx.flushedSeq, 42u);
    EXPECT_EQ(p.flushes(), 1u);

    auto order = p.fetchOrder(0);
    EXPECT_EQ(order, (std::vector<ThreadId>{0})) << "thread 1 gated";

    p.onLoadDone(load, true, true);
    EXPECT_EQ(p.fetchOrder(0).size(), 2u) << "gate lifted on data return";
}

TEST(FlushPolicyTest, L1OnlyMissDoesNotFlush)
{
    FakeContext ctx(2);
    FlushPolicy p(ctx);
    auto load = makeLoad(0, 7, 0x100);
    p.onLoadIssued(load, true, false);
    EXPECT_EQ(ctx.flushCalls, 0);
    EXPECT_EQ(p.fetchOrder(0).size(), 2u);
}

TEST(FlushPolicyTest, NestedMissDoesNotDoubleFlush)
{
    FakeContext ctx(2);
    FlushPolicy p(ctx);
    auto a = makeLoad(0, 10, 0x100);
    auto b = makeLoad(0, 5, 0x200);
    p.onLoadIssued(a, true, true);
    p.onLoadIssued(b, true, true); // already gated
    EXPECT_EQ(ctx.flushCalls, 1);
    // Only the gating load's return lifts the gate.
    p.onLoadDone(b, true, true);
    EXPECT_EQ(p.fetchOrder(0).size(), 1u);
    p.onLoadDone(a, true, true);
    EXPECT_EQ(p.fetchOrder(0).size(), 2u);
}

TEST(PdgPolicyTest, PredictedMissesGateBeforeIssue)
{
    FakeContext ctx(2);
    PdgPolicy p(ctx, 2, 64);
    // Train the predictor: loads at this PC miss.
    for (int i = 0; i < 4; ++i) {
        auto l = makeLoad(0, i, 0x500);
        p.onLoadIssued(l, true, false);
    }
    // Now fetch two loads at the missing PC: predicted pressure = 2.
    auto f1 = makeLoad(0, 100, 0x500);
    auto f2 = makeLoad(0, 101, 0x500);
    p.onFetch(f1);
    p.onFetch(f2);
    EXPECT_EQ(p.predictedInFlight(0), 2u);
    auto order = p.fetchOrder(0);
    EXPECT_EQ(order, (std::vector<ThreadId>{1}));
}

TEST(PdgPolicyTest, ActualHitCorrectsPrediction)
{
    FakeContext ctx(2);
    PdgPolicy p(ctx, 2, 64);
    for (int i = 0; i < 4; ++i) {
        auto l = makeLoad(0, i, 0x500);
        p.onLoadIssued(l, true, false);
    }
    auto f = makeLoad(0, 100, 0x500);
    p.onFetch(f);
    EXPECT_EQ(p.predictedInFlight(0), 1u);
    p.onLoadIssued(f, false, false); // actually hit
    EXPECT_EQ(p.predictedInFlight(0), 0u);
    p.onLoadDone(f, false, false); // must not double-decrement
    EXPECT_EQ(p.predictedInFlight(0), 0u);
}

TEST(PdgPolicyTest, SquashBeforeIssueReleasesPrediction)
{
    FakeContext ctx(1);
    PdgPolicy p(ctx, 2, 64);
    for (int i = 0; i < 4; ++i) {
        auto l = makeLoad(0, i, 0x500);
        p.onLoadIssued(l, true, false);
    }
    auto f = makeLoad(0, 100, 0x500);
    p.onFetch(f);
    EXPECT_EQ(p.predictedInFlight(0), 1u);
    p.onLoadDone(f, false, false); // squashed pre-issue
    EXPECT_EQ(p.predictedInFlight(0), 0u);
}

TEST(PStallPolicyTest, PredictedL2MissGatesAtFetch)
{
    FakeContext ctx(2);
    PStallPolicy p(ctx, 64);
    // Train: loads at this PC L2-miss.
    for (int i = 0; i < 4; ++i) {
        auto l = makeLoad(0, i, 0x700);
        p.onLoadIssued(l, true, true);
    }
    EXPECT_EQ(p.fetchOrder(0).size(), 2u);
    auto f = makeLoad(0, 100, 0x700);
    p.onFetch(f);
    EXPECT_TRUE(p.predictGateActive(0));
    EXPECT_EQ(p.fetchOrder(0), (std::vector<ThreadId>{1}));
    // Data returned: gate lifts.
    p.onLoadDone(f, true, true);
    EXPECT_FALSE(p.predictGateActive(0));
    EXPECT_EQ(p.fetchOrder(0).size(), 2u);
}

TEST(PStallPolicyTest, MispredictedGateLiftsOnActualHit)
{
    FakeContext ctx(1);
    PStallPolicy p(ctx, 64);
    for (int i = 0; i < 4; ++i) {
        auto l = makeLoad(0, i, 0x700);
        p.onLoadIssued(l, true, true);
    }
    auto f = makeLoad(0, 100, 0x700);
    p.onFetch(f);
    EXPECT_TRUE(p.predictGateActive(0));
    p.onLoadIssued(f, false, false); // actually hit everywhere
    EXPECT_FALSE(p.predictGateActive(0));
}

TEST(PStallPolicyTest, GatesOnActualOutstandingL2Misses)
{
    FakeContext ctx(2);
    ctx.l2 = {1, 0};
    PStallPolicy p(ctx, 64);
    EXPECT_EQ(p.fetchOrder(0), (std::vector<ThreadId>{1}));
}

TEST(PStallPolicyTest, NeverSilencesEveryone)
{
    FakeContext ctx(2);
    ctx.l2 = {1, 1};
    PStallPolicy p(ctx, 64);
    EXPECT_EQ(p.fetchOrder(0).size(), 2u);
}

TEST(RatPolicyTest, OrdersByCorrectPathPopulation)
{
    FakeContext ctx(3);
    ctx.icount = {20, 20, 20};
    ctx.wrongPath = {15, 5, 0}; // correct-path: 5, 15, 20
    RatPolicy p(ctx);
    auto order = p.fetchOrder(0);
    EXPECT_EQ(order, (std::vector<ThreadId>{0, 1, 2}));
}

TEST(RatPolicyTest, GatesAboveAceCap)
{
    FakeContext ctx(2);
    ctx.icount = {50, 10};
    RatPolicy p(ctx, 30);
    EXPECT_EQ(p.aceCap(), 30u);
    EXPECT_EQ(p.fetchOrder(0), (std::vector<ThreadId>{1}));
}

TEST(RatPolicyTest, DefaultCapDerivesFromThreadCount)
{
    FakeContext ctx(4);
    RatPolicy p(ctx);
    EXPECT_EQ(p.aceCap(), 48u); // 2 x 96 / 4
}

TEST(RatPolicyTest, FallsBackWhenAllAboveCap)
{
    FakeContext ctx(2);
    ctx.icount = {50, 60};
    RatPolicy p(ctx, 30);
    EXPECT_EQ(p.fetchOrder(0).size(), 2u);
}

// PRAT against the default PolicyContext surface (no protection, no
// occupancy, no ledger): every weight is the conservative 256/256, so
// it behaves exactly like RAT. The deeper protection-aware properties
// live in tests/test_policy_properties.cc.
TEST(PRatPolicyTest, UnprotectedContextMatchesRatSemantics)
{
    FakeContext ctx(2);
    ctx.icount = {50, 10};
    PRatPolicy p(ctx, 30);
    EXPECT_EQ(p.aceCap(), 30u);
    EXPECT_EQ(p.fetchOrder(0), (std::vector<ThreadId>{1}));
    EXPECT_EQ(p.throttledThreadCycles(), 1u);
}

TEST(PRatPolicyTest, DefaultCapMatchesRatDerivation)
{
    FakeContext ctx(4);
    PRatPolicy p(ctx);
    RatPolicy r(ctx);
    EXPECT_EQ(p.aceCap(), r.aceCap());
    EXPECT_EQ(p.epoch(), 4096u);
}

TEST(PRatPolicyTest, FallsBackWhenAllAboveCap)
{
    FakeContext ctx(2);
    ctx.icount = {50, 60};
    PRatPolicy p(ctx, 30);
    EXPECT_EQ(p.fetchOrder(0).size(), 2u);
}

TEST(FactoryTest, BuildsEveryKindWithMatchingName)
{
    FakeContext ctx(2);
    for (auto kind : {FetchPolicyKind::RoundRobin, FetchPolicyKind::Icount,
                      FetchPolicyKind::Flush, FetchPolicyKind::Stall,
                      FetchPolicyKind::Dg, FetchPolicyKind::Pdg,
                      FetchPolicyKind::DWarn, FetchPolicyKind::PStall,
                      FetchPolicyKind::Rat, FetchPolicyKind::PRat}) {
        auto p = makeFetchPolicy(kind, ctx);
        ASSERT_NE(p, nullptr);
        EXPECT_STREQ(p->name(), fetchPolicyName(kind));
        EXPECT_FALSE(p->fetchOrder(0).empty());
    }
}

} // namespace
} // namespace smtavf
