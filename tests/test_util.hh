/**
 * @file
 * Shared test helpers: RAII guard that turns panic()/fatal() into thrown
 * SimError so death paths are testable in-process.
 */

#ifndef SMTAVF_TESTS_TEST_UTIL_HH
#define SMTAVF_TESTS_TEST_UTIL_HH

#include "base/logging.hh"

namespace smtavf
{

/** While alive, SMTAVF_PANIC/SMTAVF_FATAL throw SimError. */
class ThrowGuard
{
  public:
    ThrowGuard() { setLoggingThrows(true); }
    ~ThrowGuard() { setLoggingThrows(false); }
    ThrowGuard(const ThrowGuard &) = delete;
    ThrowGuard &operator=(const ThrowGuard &) = delete;
};

} // namespace smtavf

#endif // SMTAVF_TESTS_TEST_UTIL_HH
