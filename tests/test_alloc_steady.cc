/**
 * @file
 * Steady-state allocation audit: after a warm-up period, the simulator's
 * tick loop must perform no global heap allocation. The DynInstr slab
 * pool, the completion wheel, the flat IQ, the ring-buffered queues and
 * the reused scratch vectors exist precisely so the hot loop recycles
 * memory instead of going to the allocator; this test pins that property
 * so a regression (a stray std::map node, a vector that lost its
 * reserve) fails loudly instead of silently costing throughput.
 *
 * The hook below replaces the global operator new/delete for the whole
 * test binary with counting forwarders. Every other test keeps working —
 * the hook only counts — but this file can snapshot the counter around a
 * tick window and assert it never moved.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "ckpt/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workload/mixes.hh"

/** Global allocations observed since process start (counting hook). */
static std::atomic<std::uint64_t> g_allocCount{0};

static void *
countedAlloc(std::size_t n, std::size_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (n == 0)
        n = 1;
    void *p;
    if (align > alignof(std::max_align_t)) {
        // aligned_alloc demands a size that is a multiple of the alignment.
        std::size_t rounded = (n + align - 1) / align * align;
        p = std::aligned_alloc(align, rounded);
    } else {
        p = std::malloc(n);
    }
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *operator new(std::size_t n) { return countedAlloc(n, 0); }
void *operator new[](std::size_t n) { return countedAlloc(n, 0); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(n, 0);
    } catch (...) {
        return nullptr;
    }
}
void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(n, 0);
    } catch (...) {
        return nullptr;
    }
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace smtavf
{
namespace
{

/**
 * Campaign setup/teardown allocation budgets: the measured counts in
 * docs/PERFORMANCE.md plus headroom. Allocation *counts*, not bytes —
 * the campaign cost that scales with run count is allocator round
 * trips, not footprint. Setup dropped from 138 to 7 when construction
 * moved onto the per-simulator arena (base/arena.hh): what remains is
 * the arena's slab vector and first slab, the shared slab pools, and a
 * couple of profile-string copies. The ≤10 ceiling is an acceptance
 * criterion, not a headroom number — a new setup-time container that
 * misses the arena should fail this gate.
 */
constexpr std::uint64_t kSetupAllocBudget = 10;    // measured 7
constexpr std::uint64_t kResetAllocBudget = 0;     // reset is free, always
constexpr std::uint64_t kCaptureAllocBudget = 64;  // measured 40
constexpr std::uint64_t kRestoreAllocBudget = 8;   // measured 3
constexpr std::uint64_t kTeardownAllocBudget = 4;  // measured 0

/** Ticks before measuring: pools, rings and scratch buffers warm up. */
constexpr int kWarmupTicks = 20000;
/** Audited window: the acceptance criterion's 10k-cycle spot check. */
constexpr int kWindowTicks = 10000;

class AllocSteadyState : public ::testing::TestWithParam<int>
{
};

TEST_P(AllocSteadyState, TickLoopIsAllocationFreeAfterWarmup)
{
    auto cfg = table1Config(4);
    cfg.fetchPolicy = static_cast<FetchPolicyKind>(GetParam());
    cfg.seed = 7;
    Simulator sim(cfg, findMix("4ctx-mix-A"));
    auto &core = sim.core();

    for (int i = 0; i < kWarmupTicks; ++i)
        core.tick();

    std::uint64_t before = g_allocCount.load(std::memory_order_relaxed);
    for (int i = 0; i < kWindowTicks; ++i)
        core.tick();
    std::uint64_t after = g_allocCount.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << (after - before) << " global allocations in a " << kWindowTicks
        << "-cycle steady-state window (warmup " << kWarmupTicks << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllocSteadyState,
    ::testing::Values(static_cast<int>(FetchPolicyKind::Icount),
                      static_cast<int>(FetchPolicyKind::RoundRobin)));

/**
 * Heap profile of campaign setup/teardown (docs/PERFORMANCE.md records
 * the measured counts): campaigns construct and destroy one Simulator
 * per run, and shared-warmup campaigns add a checkpoint capture and a
 * restore per run on top. None of these are in the tick loop, but at
 * thousands of runs per sweep their allocator traffic is the dominant
 * non-simulation cost, so this audit pins each phase to a budget with
 * headroom. If one of these fails after a change, re-measure, update
 * PERFORMANCE.md, and only then raise the ceiling.
 */
TEST(AllocProfile, CampaignSetupCaptureRestoreTeardownBudgets)
{
    auto cfg = table1Config(4);
    cfg.seed = 7;
    // The suite-wide SMTAVF_INVARIANTS=16 checker allocates scratch as
    // it walks the pipeline; this audit prices the *production* path.
    cfg.invariantCheckCycles = 0;
    const auto &mix = findMix("4ctx-mix-A");
    auto count = [] {
        return g_allocCount.load(std::memory_order_relaxed);
    };

    std::uint64_t setup, capture, restore, teardown;
    {
        std::uint64_t t0 = count();
        Simulator warm(cfg, mix);
        setup = count() - t0;

        t0 = count();
        Checkpoint ck = warm.captureWarmupCheckpoint(20000);
        capture = count() - t0;

        Simulator sim(cfg, mix);
        t0 = count();
        sim.restore(ck);
        restore = count() - t0;

        auto *dying = new Simulator(cfg, mix);
        t0 = count();
        delete dying;
        teardown = count() - t0;
    }

    RecordProperty("setup_allocs", static_cast<int>(setup));
    RecordProperty("capture_allocs", static_cast<int>(capture));
    RecordProperty("restore_allocs", static_cast<int>(restore));
    RecordProperty("teardown_allocs", static_cast<int>(teardown));
    std::printf("alloc-profile: setup=%llu capture=%llu restore=%llu "
                "teardown=%llu\n",
                static_cast<unsigned long long>(setup),
                static_cast<unsigned long long>(capture),
                static_cast<unsigned long long>(restore),
                static_cast<unsigned long long>(teardown));

    // Budgets = measured count (docs/PERFORMANCE.md) + headroom.
    EXPECT_LE(setup, kSetupAllocBudget);
    EXPECT_LE(capture, kCaptureAllocBudget);
    EXPECT_LE(restore, kRestoreAllocBudget);
    EXPECT_LE(teardown, kTeardownAllocBudget);
}

/**
 * The worker-reuse path: reset() must be exactly allocation-free, both
 * after a plain construction and after a completed run — every
 * container assign()s within its retained capacity, the stream
 * generators re-seed in place, and the config copy is flat. A single
 * allocation here would multiply across every reused campaign run, and
 * usually means a reset hook fell back to a rebuild-by-reallocation.
 */
TEST(AllocProfile, ResetIsAllocationFree)
{
    auto cfg = table1Config(4);
    cfg.seed = 7;
    cfg.invariantCheckCycles = 0;
    const auto &mix = findMix("4ctx-mix-A");
    auto count = [] {
        return g_allocCount.load(std::memory_order_relaxed);
    };

    Simulator sim(cfg, mix);
    ASSERT_TRUE(sim.canResetTo(cfg, mix));

    std::uint64_t t0 = count();
    sim.reset(cfg, mix);
    std::uint64_t fresh_reset = count() - t0;

    // A short run grows run-time scratch (completion wheel overflow,
    // notice buffers); the follow-up reset must still allocate nothing.
    sim.run(20000);
    auto cfg2 = cfg;
    cfg2.seed = 11; // a re-seed is part of the reuse contract
    t0 = count();
    sim.reset(cfg2, mix);
    std::uint64_t used_reset = count() - t0;

    std::printf("alloc-profile: reset(fresh)=%llu reset(after-run)=%llu\n",
                static_cast<unsigned long long>(fresh_reset),
                static_cast<unsigned long long>(used_reset));
    EXPECT_LE(fresh_reset, kResetAllocBudget);
    EXPECT_LE(used_reset, kResetAllocBudget);
}

TEST(AllocSteadyState, HookCountsAllocations)
{
    std::uint64_t before = g_allocCount.load(std::memory_order_relaxed);
    auto *v = new std::vector<int>(1024);
    std::uint64_t after = g_allocCount.load(std::memory_order_relaxed);
    delete v;
    EXPECT_GE(after - before, 2u); // the vector object + its buffer
}

} // namespace
} // namespace smtavf
