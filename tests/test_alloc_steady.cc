/**
 * @file
 * Steady-state allocation audit: after a warm-up period, the simulator's
 * tick loop must perform no global heap allocation. The DynInstr slab
 * pool, the completion wheel, the flat IQ, the ring-buffered queues and
 * the reused scratch vectors exist precisely so the hot loop recycles
 * memory instead of going to the allocator; this test pins that property
 * so a regression (a stray std::map node, a vector that lost its
 * reserve) fails loudly instead of silently costing throughput.
 *
 * The hook below replaces the global operator new/delete for the whole
 * test binary with counting forwarders. Every other test keeps working —
 * the hook only counts — but this file can snapshot the counter around a
 * tick window and assert it never moved.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workload/mixes.hh"

/** Global allocations observed since process start (counting hook). */
static std::atomic<std::uint64_t> g_allocCount{0};

static void *
countedAlloc(std::size_t n, std::size_t align)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (n == 0)
        n = 1;
    void *p;
    if (align > alignof(std::max_align_t)) {
        // aligned_alloc demands a size that is a multiple of the alignment.
        std::size_t rounded = (n + align - 1) / align * align;
        p = std::aligned_alloc(align, rounded);
    } else {
        p = std::malloc(n);
    }
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *operator new(std::size_t n) { return countedAlloc(n, 0); }
void *operator new[](std::size_t n) { return countedAlloc(n, 0); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(n, 0);
    } catch (...) {
        return nullptr;
    }
}
void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    try {
        return countedAlloc(n, 0);
    } catch (...) {
        return nullptr;
    }
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace smtavf
{
namespace
{

/** Ticks before measuring: pools, rings and scratch buffers warm up. */
constexpr int kWarmupTicks = 20000;
/** Audited window: the acceptance criterion's 10k-cycle spot check. */
constexpr int kWindowTicks = 10000;

class AllocSteadyState : public ::testing::TestWithParam<int>
{
};

TEST_P(AllocSteadyState, TickLoopIsAllocationFreeAfterWarmup)
{
    auto cfg = table1Config(4);
    cfg.fetchPolicy = static_cast<FetchPolicyKind>(GetParam());
    cfg.seed = 7;
    Simulator sim(cfg, findMix("4ctx-mix-A"));
    auto &core = sim.core();

    for (int i = 0; i < kWarmupTicks; ++i)
        core.tick();

    std::uint64_t before = g_allocCount.load(std::memory_order_relaxed);
    for (int i = 0; i < kWindowTicks; ++i)
        core.tick();
    std::uint64_t after = g_allocCount.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << (after - before) << " global allocations in a " << kWindowTicks
        << "-cycle steady-state window (warmup " << kWarmupTicks << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllocSteadyState,
    ::testing::Values(static_cast<int>(FetchPolicyKind::Icount),
                      static_cast<int>(FetchPolicyKind::RoundRobin)));

TEST(AllocSteadyState, HookCountsAllocations)
{
    std::uint64_t before = g_allocCount.load(std::memory_order_relaxed);
    auto *v = new std::vector<int>(1024);
    std::uint64_t after = g_allocCount.load(std::memory_order_relaxed);
    delete v;
    EXPECT_GE(after - before, 2u); // the vector object + its buffer
}

} // namespace
} // namespace smtavf
