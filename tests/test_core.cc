/**
 * @file
 * Integration tests for the SMT core: end-to-end pipeline behaviour,
 * determinism, squash recovery, policy interaction and resource hygiene.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

WorkloadMix
tinyMix(unsigned contexts)
{
    WorkloadMix m;
    m.name = "tiny";
    m.contexts = contexts;
    m.type = MixType::Mix;
    m.group = 'A';
    const char *names[] = {"eon", "mcf", "mesa", "twolf",
                           "gcc", "swim", "bzip2", "vpr"};
    for (unsigned i = 0; i < contexts; ++i)
        m.benchmarks.push_back(names[i]);
    return m;
}

MachineConfig
tinyConfig(unsigned contexts)
{
    MachineConfig cfg;
    cfg.contexts = contexts;
    cfg.seed = 12345;
    return cfg;
}

TEST(CoreIntegration, RunsToBudget)
{
    Simulator sim(tinyConfig(2), tinyMix(2));
    auto r = sim.run(5000);
    EXPECT_GE(r.totalCommitted, 5000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(CoreIntegration, EveryThreadMakesProgress)
{
    Simulator sim(tinyConfig(4), tinyMix(4));
    auto r = sim.run(20000);
    for (const auto &t : r.threads)
        EXPECT_GT(t.committed, 0u) << t.benchmark;
}

TEST(CoreIntegration, PerThreadCommitsSumToTotal)
{
    Simulator sim(tinyConfig(4), tinyMix(4));
    auto r = sim.run(20000);
    std::uint64_t sum = 0;
    for (const auto &t : r.threads)
        sum += t.committed;
    EXPECT_EQ(sum, r.totalCommitted);
}

TEST(CoreIntegration, DeterministicAcrossRuns)
{
    auto run = [] {
        Simulator sim(tinyConfig(2), tinyMix(2));
        return sim.run(8000);
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalCommitted, b.totalCommitted);
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        auto hs = static_cast<HwStruct>(s);
        EXPECT_DOUBLE_EQ(a.avf.avf(hs), b.avf.avf(hs)) << hwStructName(hs);
    }
}

TEST(CoreIntegration, SeedChangesOutcome)
{
    Simulator a(tinyConfig(2), tinyMix(2));
    auto cfg = tinyConfig(2);
    cfg.seed = 999;
    Simulator b(cfg, tinyMix(2));
    EXPECT_NE(a.run(8000).cycles, b.run(8000).cycles);
}

TEST(CoreIntegration, SingleContextSuperscalarWorks)
{
    WorkloadMix m{"st", 1, MixType::Cpu, 'A', {"eon"}};
    Simulator sim(tinyConfig(1), m);
    auto r = sim.run(10000);
    EXPECT_GT(r.ipc, 0.5) << "a CPU-bound thread should run fast alone";
}

TEST(CoreIntegration, EightContextsWork)
{
    Simulator sim(tinyConfig(8), tinyMix(8));
    auto r = sim.run(30000);
    EXPECT_GE(r.totalCommitted, 30000u);
    EXPECT_EQ(r.threads.size(), 8u);
}

TEST(CoreIntegration, MispredictsProduceWrongPathAndSquashes)
{
    Simulator sim(tinyConfig(2), tinyMix(2));
    auto r = sim.run(10000);
    EXPECT_GT(r.stats.get("fetch.wrongPath"), 0.0);
    EXPECT_GT(r.stats.get("squashed"), 0.0);
    EXPECT_GT(r.stats.get("branch.mispredictRate"), 0.0);
    EXPECT_LT(r.stats.get("branch.mispredictRate"), 0.3);
}

TEST(CoreIntegration, WrongPathAblationFetchesNone)
{
    auto cfg = tinyConfig(2);
    cfg.avf.wrongPathModel = false;
    Simulator sim(cfg, tinyMix(2));
    auto r = sim.run(10000);
    EXPECT_EQ(r.stats.get("fetch.wrongPath"), 0.0);
}

TEST(CoreIntegration, DeadCodeFractionIsPlausible)
{
    Simulator sim(tinyConfig(2), tinyMix(2));
    auto r = sim.run(20000);
    double dead = r.stats.get("deadCode.fraction");
    EXPECT_GT(dead, 0.01);
    EXPECT_LT(dead, 0.5);
}

TEST(CoreIntegration, MismatchedMixIsFatal)
{
    ThrowGuard guard;
    EXPECT_THROW(Simulator(tinyConfig(2), tinyMix(4)), SimError);
}

TEST(CoreIntegration, SimulatorIsSingleUse)
{
    ThrowGuard guard;
    Simulator sim(tinyConfig(2), tinyMix(2));
    sim.run(2000);
    EXPECT_THROW(sim.run(2000), SimError);
}

TEST(CoreIntegration, ZeroBudgetIsFatal)
{
    ThrowGuard guard;
    Simulator sim(tinyConfig(2), tinyMix(2));
    EXPECT_THROW(sim.run(0), SimError);
}

TEST(CoreIntegration, TooSmallRegisterPoolIsFatal)
{
    ThrowGuard guard;
    auto cfg = tinyConfig(8);
    cfg.intPhysRegs = 100; // < 8 x 32 committed mappings
    EXPECT_THROW(Simulator(cfg, tinyMix(8)), SimError);
}

class PolicyIntegration
    : public ::testing::TestWithParam<FetchPolicyKind>
{
};

TEST_P(PolicyIntegration, EveryPolicyRunsCleanly)
{
    auto cfg = tinyConfig(4);
    cfg.fetchPolicy = GetParam();
    Simulator sim(cfg, tinyMix(4));
    auto r = sim.run(15000);
    EXPECT_GE(r.totalCommitted, 15000u);
    for (const auto &t : r.threads)
        EXPECT_GT(t.committed, 0u)
            << fetchPolicyName(GetParam()) << " starved " << t.benchmark;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyIntegration,
    ::testing::Values(FetchPolicyKind::RoundRobin, FetchPolicyKind::Icount,
                      FetchPolicyKind::Flush, FetchPolicyKind::Stall,
                      FetchPolicyKind::Dg, FetchPolicyKind::Pdg,
                      FetchPolicyKind::DWarn));

TEST(CoreIntegration, FlushPolicyActuallyFlushes)
{
    auto cfg = tinyConfig(4);
    cfg.fetchPolicy = FetchPolicyKind::Flush;
    WorkloadMix mem{"mem", 4, MixType::Mem, 'A',
                    {"mcf", "swim", "twolf", "equake"}};
    Simulator sim(cfg, mem);
    auto r = sim.run(20000);
    // FLUSH squashes correct-path work on L2 misses: far more squashes
    // than mispredict-only execution produces.
    auto &policy = static_cast<SmtCore &>(sim.core()).policy();
    EXPECT_STREQ(policy.name(), "FLUSH");
    EXPECT_GT(r.stats.get("squashed"), 0.0);
}

TEST(CoreIntegration, SmtBeatsWorstSingleThread)
{
    // Total throughput with 2 threads must exceed either thread alone.
    WorkloadMix duo{"duo", 2, MixType::Cpu, 'A', {"eon", "mesa"}};
    Simulator smt(tinyConfig(2), duo);
    auto r = smt.run(20000);

    WorkloadMix solo{"solo", 1, MixType::Cpu, 'A', {"eon"}};
    Simulator st(tinyConfig(1), solo);
    auto rs = st.run(10000);

    EXPECT_GT(r.ipc, rs.ipc * 0.9)
        << "SMT throughput should not collapse below single-thread";
}

TEST(CoreIntegration, OccupancyBoundsHold)
{
    Simulator sim(tinyConfig(4), tinyMix(4));
    auto r = sim.run(20000);
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        auto hs = static_cast<HwStruct>(s);
        EXPECT_GE(r.avf.avf(hs), 0.0) << hwStructName(hs);
        EXPECT_LE(r.avf.avf(hs), 1.0) << hwStructName(hs);
        EXPECT_LE(r.avf.avf(hs), r.avf.occupancy(hs) + 1e-9)
            << hwStructName(hs);
        EXPECT_LE(r.avf.occupancy(hs), 1.0 + 1e-9) << hwStructName(hs);
    }
}

TEST(CoreIntegration, ThreadAvfSumsBelowAggregateBound)
{
    Simulator sim(tinyConfig(2), tinyMix(2));
    auto r = sim.run(10000);
    // For shared structures, thread contributions sum to the aggregate.
    for (auto hs : {HwStruct::IQ, HwStruct::RegFile, HwStruct::FU}) {
        double sum = 0;
        for (ThreadId t = 0; t < 2; ++t)
            sum += r.avf.threadAvf(hs, t);
        EXPECT_NEAR(sum, r.avf.avf(hs), 1e-9) << hwStructName(hs);
    }
}

} // namespace
} // namespace smtavf
