/**
 * @file
 * Unit tests for the cache content/placement model and its observer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

/** Records observer events for verification. */
class RecordingObserver : public CacheObserver
{
  public:
    struct Event
    {
        char kind; // 'F', 'A', 'E'
        std::uint32_t slot;
        Addr addr;
        std::uint32_t size;
        bool write;
        bool dirty;
        Cycle cycle;
    };

    void
    onFill(std::uint32_t slot, Addr line_addr, ThreadId, Cycle now) override
    {
        events.push_back({'F', slot, line_addr, 0, false, false, now});
    }

    void
    onAccess(std::uint32_t slot, Addr addr, std::uint32_t size,
             bool is_write, ThreadId, Cycle now) override
    {
        events.push_back({'A', slot, addr, size, is_write, false, now});
    }

    void
    onEvict(std::uint32_t slot, bool dirty, Cycle now) override
    {
        events.push_back({'E', slot, 0, 0, false, dirty, now});
    }

    std::vector<Event> events;
};

CacheConfig
smallCache()
{
    return {"test", 1024, 2, 64, 1, 2}; // 8 sets x 2 ways x 64B
}

TEST(CacheTest, RejectsBadGeometry)
{
    ThrowGuard guard;
    EXPECT_THROW(Cache({"x", 0, 2, 64, 1, 1}), SimError);
    EXPECT_THROW(Cache({"x", 1024, 2, 60, 1, 1}), SimError); // line !pow2
    EXPECT_THROW(Cache({"x", 1024, 3, 64, 1, 1}), SimError); // 16 % 3 != 0
}

TEST(CacheTest, GeometryDerivation)
{
    Cache c(smallCache());
    EXPECT_EQ(c.numSets(), 8u);
    EXPECT_EQ(c.numLines(), 16u);
    EXPECT_EQ(c.lineAddr(0x1234), 0x1200u);
}

TEST(CacheTest, MissThenFillThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, 4, false, 0, 1));
    EXPECT_EQ(c.misses(), 1u);
    c.fill(0x1000, 0, 2);
    EXPECT_TRUE(c.access(0x1000, 4, false, 0, 3));
    EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheTest, ProbeDoesNotMutate)
{
    Cache c(smallCache());
    c.fill(0x1000, 0, 1);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(CacheTest, FillIsIdempotent)
{
    Cache c(smallCache());
    RecordingObserver obs;
    c.setObserver(&obs);
    c.fill(0x1000, 0, 1);
    c.fill(0x1010, 0, 2); // same line
    EXPECT_EQ(obs.events.size(), 1u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed)
{
    Cache c(smallCache()); // 2 ways
    // Three lines in the same set: stride = 8 sets * 64B.
    Addr a = 0x0000, b = 0x2000, d = 0x4000;
    c.fill(a, 0, 1);
    c.fill(b, 0, 2);
    c.access(a, 4, false, 0, 3); // a more recent than b
    c.fill(d, 0, 4);             // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(CacheTest, DirtyPropagatesToEviction)
{
    Cache c(smallCache());
    RecordingObserver obs;
    c.setObserver(&obs);
    c.fill(0x0000, 0, 1);
    c.access(0x0000, 4, true, 0, 2); // write -> dirty
    c.fill(0x2000, 0, 3);
    c.fill(0x4000, 0, 4); // evicts 0x0000 (LRU)
    bool found_dirty_evict = false;
    for (const auto &e : obs.events)
        if (e.kind == 'E')
            found_dirty_evict = e.dirty;
    EXPECT_TRUE(found_dirty_evict);
}

TEST(CacheTest, ObserverSeesFillAccessEvictSequence)
{
    Cache c(smallCache());
    RecordingObserver obs;
    c.setObserver(&obs);
    c.access(0x1000, 4, false, 0, 1); // miss: no event
    c.fill(0x1000, 2, 5);
    c.access(0x1004, 8, false, 2, 6);
    c.flushAll(10);
    ASSERT_EQ(obs.events.size(), 3u);
    EXPECT_EQ(obs.events[0].kind, 'F');
    EXPECT_EQ(obs.events[0].cycle, 5u);
    EXPECT_EQ(obs.events[1].kind, 'A');
    EXPECT_EQ(obs.events[1].addr, 0x1004u);
    EXPECT_EQ(obs.events[1].size, 8u);
    EXPECT_EQ(obs.events[2].kind, 'E');
    EXPECT_EQ(obs.events[2].cycle, 10u);
}

TEST(CacheTest, SlotIdsAreStable)
{
    Cache c(smallCache());
    RecordingObserver obs;
    c.setObserver(&obs);
    c.fill(0x1000, 0, 1);
    auto slot = obs.events.back().slot;
    c.access(0x1000, 4, false, 0, 2);
    EXPECT_EQ(obs.events.back().slot, slot);
}

TEST(CacheTest, FlushAllEmptiesTheCache)
{
    Cache c(smallCache());
    c.fill(0x1000, 0, 1);
    c.fill(0x2000, 0, 1);
    c.flushAll(5);
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(CacheTest, MissRateComputation)
{
    Cache c(smallCache());
    c.access(0x1000, 4, false, 0, 1); // miss
    c.fill(0x1000, 0, 1);
    c.access(0x1000, 4, false, 0, 2); // hit
    c.access(0x1000, 4, false, 0, 3); // hit
    EXPECT_NEAR(c.missRate(), 1.0 / 3.0, 1e-12);
}

TEST(CacheTest, DistinctSetsDontConflict)
{
    Cache c(smallCache());
    for (int s = 0; s < 8; ++s)
        c.fill(0x1000 + s * 64, 0, 1);
    for (int s = 0; s < 8; ++s)
        EXPECT_TRUE(c.probe(0x1000 + s * 64));
}

} // namespace
} // namespace smtavf
