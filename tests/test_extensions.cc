/**
 * @file
 * Integration tests for the Section-5 extension features: PSTALL and RAT
 * fetch policies, static IQ partitioning, AVF timelines, and the
 * custom-profile simulator entry point.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(ExtensionPolicies, PStallRunsAndReducesIqAvfOnMixWorkload)
{
    // On all-MEM mixes the keep-one-thread-fetching fallback fires nearly
    // every cycle (everyone is missing), so — exactly like STALL — the
    // effect shows on MIX workloads where gated memory-bound threads give
    // way to CPU-bound ones.
    auto base = runMix(findMix("4ctx-mix-A"), FetchPolicyKind::Icount,
                       40000);
    auto pstall = runMix(findMix("4ctx-mix-A"), FetchPolicyKind::PStall,
                         40000);
    EXPECT_GE(pstall.totalCommitted, 40000u);
    EXPECT_LT(pstall.avf.avf(HwStruct::IQ), base.avf.avf(HwStruct::IQ));
}

TEST(ExtensionPolicies, PStallAtLeastMatchesStallOnMixWorkload)
{
    // The Section-5 motivation: gating at fetch (predicted) admits fewer
    // ACE bits than gating at miss detection.
    auto stall = runMix(findMix("4ctx-mix-A"), FetchPolicyKind::Stall,
                        40000);
    auto pstall = runMix(findMix("4ctx-mix-A"), FetchPolicyKind::PStall,
                         40000);
    EXPECT_LE(pstall.avf.avf(HwStruct::IQ),
              stall.avf.avf(HwStruct::IQ) * 1.05);
}

TEST(ExtensionPolicies, RatRunsAndBoundsIqAvf)
{
    auto base = runMix(findMix("4ctx-mix-A"), FetchPolicyKind::Icount,
                       40000);
    auto rat = runMix(findMix("4ctx-mix-A"), FetchPolicyKind::Rat, 40000);
    EXPECT_GE(rat.totalCommitted, 40000u);
    EXPECT_LT(rat.avf.avf(HwStruct::IQ), base.avf.avf(HwStruct::IQ));
    for (const auto &t : rat.threads)
        EXPECT_GT(t.committed, 0u);
}

TEST(IqPartitioning, ReducesIqAvfOnMemMix)
{
    auto cfg = table1Config(4);
    auto base = runMix(cfg, findMix("4ctx-mem-A"), 40000);
    cfg.iqPartitioned = true;
    auto part = runMix(cfg, findMix("4ctx-mem-A"), 40000);
    // A clogged thread can hold at most 24 of the 96 entries now.
    EXPECT_LT(part.avf.avf(HwStruct::IQ), base.avf.avf(HwStruct::IQ));
    EXPECT_GE(part.totalCommitted, 40000u);
}

TEST(IqPartitioning, PartitionIsEnforcedAtDispatch)
{
    // With the partition on, no thread ever holds more than
    // iqSize / contexts = 24 issue-queue entries.
    auto cfg = table1Config(4);
    cfg.iqPartitioned = true;
    WorkloadMix m{"clog", 4, MixType::Mem, 'A',
                  {"mcf", "mcf", "mcf", "mcf"}};
    Simulator sim(cfg, m);
    auto &core = sim.core();
    for (int i = 0; i < 3000; ++i) {
        core.tick();
        for (ThreadId t = 0; t < 4; ++t)
            ASSERT_LE(core.iqOccupancy(t), 24u);
    }
}

TEST(AvfTimelineTest, WindowsCoverTheRun)
{
    auto cfg = table1Config(2);
    cfg.avfSampleCycles = 1000;
    auto r = runMix(cfg, findMix("2ctx-mix-A"), 20000);
    ASSERT_NE(r.timeline, nullptr);
    EXPECT_GE(r.timeline->windows(), 2u);

    // Windowed ACE mass sums back to the aggregate AVF.
    double total = 0;
    double cycles = 0;
    for (std::size_t w = 0; w < r.timeline->windows(); ++w) {
        // windows are equal-length except possibly the last
        double len = w + 1 < r.timeline->windows()
                         ? 1000.0
                         : static_cast<double>(r.cycles) -
                               1000.0 * (r.timeline->windows() - 1);
        total += r.timeline->windowAvf(HwStruct::IQ, w) * len;
        cycles += len;
    }
    EXPECT_NEAR(total / cycles, r.avf.avf(HwStruct::IQ), 1e-9);
}

TEST(AvfTimelineTest, DisabledByDefault)
{
    auto r = runMix(findMix("2ctx-mix-A"), FetchPolicyKind::Icount, 5000);
    EXPECT_EQ(r.timeline, nullptr);
}

TEST(AvfTimelineTest, VariabilityIsFiniteAndNonNegative)
{
    auto cfg = table1Config(2);
    cfg.avfSampleCycles = 500;
    auto r = runMix(cfg, findMix("2ctx-mem-A"), 20000);
    ASSERT_NE(r.timeline, nullptr);
    double v = r.timeline->variability(HwStruct::IQ);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 10.0);
}

TEST(AvfTimelineTest, RejectsZeroInterval)
{
    ThrowGuard guard;
    AvfLedger ledger(1);
    EXPECT_THROW(AvfTimeline(ledger, 0), SimError);
}

TEST(L2AvfTracking, OffByDefault)
{
    auto r = runMix(findMix("2ctx-mix-A"), FetchPolicyKind::Icount, 5000);
    EXPECT_EQ(r.avf.occupancy(HwStruct::L2Data), 0.0);
    EXPECT_EQ(r.avf.avf(HwStruct::L2Tag), 0.0);
}

TEST(L2AvfTracking, TracksWhenEnabled)
{
    auto cfg = table1Config(2);
    cfg.avf.trackL2Avf = true;
    auto r = runMix(cfg, findMix("2ctx-mem-A"), 20000);
    EXPECT_GT(r.avf.occupancy(HwStruct::L2Data), 0.0);
    EXPECT_LE(r.avf.avf(HwStruct::L2Data),
              r.avf.occupancy(HwStruct::L2Data) + 1e-12);
    EXPECT_LE(r.avf.avf(HwStruct::L2Tag), 1.0);
}

TEST(L2AvfTracking, DoesNotPerturbTiming)
{
    auto cfg = table1Config(2);
    auto base = runMix(cfg, findMix("2ctx-mix-A"), 10000);
    cfg.avf.trackL2Avf = true;
    auto tracked = runMix(cfg, findMix("2ctx-mix-A"), 10000);
    EXPECT_EQ(base.cycles, tracked.cycles);
    EXPECT_DOUBLE_EQ(base.avf.avf(HwStruct::IQ),
                     tracked.avf.avf(HwStruct::IQ));
}

TEST(CustomProfiles, SimulatorAcceptsExplicitProfiles)
{
    BenchmarkProfile p = findProfile("eon");
    p.name = "my-workload";
    auto cfg = table1Config(2);
    Simulator sim(cfg, {p, p}, "custom-pair");
    auto r = sim.run(8000);
    EXPECT_GE(r.totalCommitted, 8000u);
    EXPECT_EQ(r.mixName, "custom-pair");
    EXPECT_EQ(r.threads[0].benchmark, "my-workload");
}

TEST(CustomProfiles, CountMustMatchContexts)
{
    ThrowGuard guard;
    BenchmarkProfile p = findProfile("eon");
    auto cfg = table1Config(2);
    EXPECT_THROW(Simulator(cfg, {p}, "short"), SimError);
}

TEST(CustomProfiles, InvalidProfileIsFatal)
{
    ThrowGuard guard;
    BenchmarkProfile p = findProfile("eon");
    p.loadFrac = 2.0;
    auto cfg = table1Config(1);
    EXPECT_THROW(Simulator(cfg, {p}, "bad"), SimError);
}

} // namespace
} // namespace smtavf
