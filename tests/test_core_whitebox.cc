/**
 * @file
 * White-box tick-by-tick invariants on the SMT core, checked every cycle
 * over live runs under several policies.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace smtavf
{
namespace
{

class CoreWhitebox : public ::testing::TestWithParam<int>
{
};

TEST_P(CoreWhitebox, PerCycleInvariantsHold)
{
    auto cfg = table1Config(4);
    cfg.fetchPolicy = static_cast<FetchPolicyKind>(GetParam());
    cfg.seed = 31;
    Simulator sim(cfg, findMix("4ctx-mix-A"));
    auto &core = sim.core();

    std::uint64_t last_committed = 0;
    unsigned iq_cap = cfg.iqSize;
    for (int i = 0; i < 5000; ++i) {
        core.tick();

        // Commit counts are monotone and cycle time advances 1:1.
        ASSERT_GE(core.totalCommitted(), last_committed);
        last_committed = core.totalCommitted();
        ASSERT_EQ(core.now(), static_cast<Cycle>(i + 1));

        unsigned iq_total = 0;
        std::uint64_t committed_sum = 0;
        for (ThreadId t = 0; t < 4; ++t) {
            // Correct-path in-flight never exceeds total in-flight.
            ASSERT_LE(core.inFlightCorrectPath(t), core.inFlightCount(t));
            // IQ occupancy is part of the in-flight count.
            ASSERT_LE(core.iqOccupancy(t), core.inFlightCount(t));
            iq_total += core.iqOccupancy(t);
            committed_sum += core.committed(t);
        }
        // The shared IQ never overflows and per-thread shares sum to it.
        ASSERT_LE(iq_total, iq_cap);
        ASSERT_EQ(committed_sum, core.totalCommitted());
    }

    // Fetch accounting: committed + squashed can never exceed fetched.
    ASSERT_LE(core.totalCommitted() + core.squashedInstrs(),
              core.fetchedInstrs());
    // Wrong-path fetches are a subset of all fetches.
    ASSERT_LE(core.wrongPathFetched(), core.fetchedInstrs());

    // The diagnostic dump renders for every thread.
    auto dump = core.stateDump();
    EXPECT_NE(dump.find("T0"), std::string::npos);
    EXPECT_NE(dump.find("T3"), std::string::npos);
    EXPECT_NE(dump.find("freeInt"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CoreWhitebox,
    ::testing::Values(static_cast<int>(FetchPolicyKind::Icount),
                      static_cast<int>(FetchPolicyKind::Flush),
                      static_cast<int>(FetchPolicyKind::Stall),
                      static_cast<int>(FetchPolicyKind::DWarn),
                      static_cast<int>(FetchPolicyKind::PStall),
                      static_cast<int>(FetchPolicyKind::Rat)));

TEST(CoreWhitebox, PolicyAccessorMatchesConfig)
{
    auto cfg = table1Config(2);
    cfg.fetchPolicy = FetchPolicyKind::DWarn;
    Simulator sim(cfg, findMix("2ctx-cpu-A"));
    EXPECT_STREQ(sim.core().policy().name(), "DWarn");
    EXPECT_EQ(sim.core().numThreads(), 2u);
}

} // namespace
} // namespace smtavf
