/**
 * @file
 * Unit tests for the synthetic ISA helpers and DynInstr flags.
 */

#include <gtest/gtest.h>

#include "isa/instr.hh"

namespace smtavf
{
namespace
{

TEST(OpClassHelpers, ControlClassification)
{
    EXPECT_TRUE(isControl(OpClass::BranchCond));
    EXPECT_TRUE(isControl(OpClass::BranchUncond));
    EXPECT_TRUE(isControl(OpClass::Call));
    EXPECT_TRUE(isControl(OpClass::Return));
    EXPECT_FALSE(isControl(OpClass::IntAlu));
    EXPECT_FALSE(isControl(OpClass::Load));
    EXPECT_FALSE(isControl(OpClass::Nop));
}

TEST(OpClassHelpers, MemClassification)
{
    EXPECT_TRUE(isMemRef(OpClass::Load));
    EXPECT_TRUE(isMemRef(OpClass::Store));
    EXPECT_FALSE(isMemRef(OpClass::IntAlu));
    EXPECT_FALSE(isMemRef(OpClass::BranchCond));
}

TEST(OpClassHelpers, FloatClassification)
{
    EXPECT_TRUE(isFloat(OpClass::FpAlu));
    EXPECT_TRUE(isFloat(OpClass::FpMult));
    EXPECT_TRUE(isFloat(OpClass::FpDiv));
    EXPECT_FALSE(isFloat(OpClass::IntMult));
    EXPECT_FALSE(isFloat(OpClass::Load));
}

TEST(OpClassHelpers, NamesAreDistinct)
{
    for (std::size_t i = 0; i < numOpClasses; ++i)
        for (std::size_t j = i + 1; j < numOpClasses; ++j)
            EXPECT_STRNE(opClassName(static_cast<OpClass>(i)),
                         opClassName(static_cast<OpClass>(j)));
}

TEST(RegisterNamespace, FpSplit)
{
    EXPECT_FALSE(isFpReg(0));
    EXPECT_FALSE(isFpReg(31));
    EXPECT_TRUE(isFpReg(32));
    EXPECT_TRUE(isFpReg(63));
}

TEST(RegisterNamespace, ZeroRegs)
{
    EXPECT_TRUE(isZeroReg(0));
    EXPECT_TRUE(isZeroReg(numArchIntRegs));
    EXPECT_FALSE(isZeroReg(1));
    EXPECT_FALSE(isZeroReg(numArchIntRegs + 1));
}

TEST(DynInstrTest, WritesRegRespectsZeroSinks)
{
    DynInstr in;
    in.destReg = invalidReg;
    EXPECT_FALSE(in.writesReg());
    in.destReg = 0;
    EXPECT_FALSE(in.writesReg());
    in.destReg = 5;
    EXPECT_TRUE(in.writesReg());
}

TEST(DynInstrTest, NeverAceFlags)
{
    DynInstr in;
    in.op = OpClass::IntAlu;
    EXPECT_FALSE(in.neverAce());
    in.wrongPath = true;
    EXPECT_TRUE(in.neverAce());
    in.wrongPath = false;
    in.squashed = true;
    EXPECT_TRUE(in.neverAce());
    in.squashed = false;
    in.op = OpClass::Nop;
    EXPECT_TRUE(in.neverAce());
}

TEST(DynInstrTest, BranchAndMemShortcuts)
{
    DynInstr in;
    in.op = OpClass::Call;
    EXPECT_TRUE(in.isBranch());
    EXPECT_FALSE(in.isMem());
    in.op = OpClass::Store;
    EXPECT_FALSE(in.isBranch());
    EXPECT_TRUE(in.isMem());
}

TEST(HwStructNames, AllNamed)
{
    for (std::size_t i = 0; i < numHwStructs; ++i)
        EXPECT_STRNE(hwStructName(static_cast<HwStruct>(i)), "?");
}

} // namespace
} // namespace smtavf
