/**
 * @file
 * Unit tests for gshare, BTB, RAS and the combined thread predictor.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

// ---- gshare ---------------------------------------------------------------

TEST(GshareTest, RejectsBadGeometry)
{
    ThrowGuard guard;
    EXPECT_THROW(Gshare(1000, 10), SimError); // not a power of two
    EXPECT_THROW(Gshare(0, 10), SimError);
    EXPECT_THROW(Gshare(1024, 0), SimError);
    EXPECT_THROW(Gshare(1024, 30), SimError);
}

TEST(GshareTest, LearnsAlwaysTakenBranch)
{
    Gshare g(1024, 8);
    Addr pc = 0x1000;
    for (int i = 0; i < 50; ++i) {
        auto h = g.history();
        g.speculate(true);
        g.update(pc, true, h);
    }
    EXPECT_TRUE(g.predict(pc));
}

TEST(GshareTest, LearnsAlwaysNotTakenBranch)
{
    Gshare g(1024, 8);
    Addr pc = 0x2000;
    for (int i = 0; i < 50; ++i) {
        auto h = g.history();
        g.speculate(false);
        g.update(pc, false, h);
    }
    EXPECT_FALSE(g.predict(pc));
}

TEST(GshareTest, LearnsShortLoopPattern)
{
    // Pattern TTTN repeating: with 8 bits of history the exit position is
    // fully identifiable, so steady-state prediction is perfect.
    Gshare g(4096, 8);
    Addr pc = 0x3000;
    int mispredicts = 0;
    for (int iter = 0; iter < 400; ++iter) {
        bool taken = (iter % 4) != 3;
        bool pred = g.predict(pc);
        if (iter >= 200 && pred != taken)
            ++mispredicts;
        auto h = g.history();
        g.speculate(taken);
        g.update(pc, taken, h);
    }
    EXPECT_EQ(mispredicts, 0);
}

TEST(GshareTest, HistorySaveRestore)
{
    Gshare g(1024, 10);
    g.speculate(true);
    g.speculate(false);
    auto saved = g.history();
    g.speculate(true);
    g.speculate(true);
    g.restoreHistory(saved);
    EXPECT_EQ(g.history(), saved);
}

TEST(GshareTest, SpeculateReturnsPreviousHistory)
{
    Gshare g(1024, 10);
    auto before = g.history();
    auto returned = g.speculate(true);
    EXPECT_EQ(returned, before);
    EXPECT_EQ(g.history(), ((before << 1) | 1u) & 0x3ffu);
}

TEST(GshareTest, CorrectHistoryRewritesLastBit)
{
    Gshare g(1024, 10);
    auto pre = g.speculate(true); // wrong guess
    g.correctHistory(pre, false);
    EXPECT_EQ(g.history(), (pre << 1) & 0x3ffu);
}

// ---- BTB -------------------------------------------------------------------

TEST(BtbTest, RejectsBadGeometry)
{
    ThrowGuard guard;
    EXPECT_THROW(Btb(0, 4), SimError);
    EXPECT_THROW(Btb(10, 4), SimError);  // not divisible
    EXPECT_THROW(Btb(2048, 3), SimError); // non-power-of-two sets
}

TEST(BtbTest, MissThenHitAfterUpdate)
{
    Btb btb(2048, 4);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    auto t = btb.lookup(0x1000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x2000u);
}

TEST(BtbTest, UpdateOverwritesTarget)
{
    Btb btb(2048, 4);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(BtbTest, LruEvictionWithinSet)
{
    Btb btb(8, 2); // 4 sets, 2 ways
    // Three branches mapping to the same set (stride = sets * 4 bytes).
    Addr a = 0x1000, b = 0x1000 + 4 * 4, c = 0x1000 + 8 * 4;
    btb.update(a, 1);
    btb.update(b, 2);
    btb.lookup(a); // a most recent
    btb.update(c, 3); // evicts b
    EXPECT_TRUE(btb.lookup(a).has_value());
    EXPECT_FALSE(btb.lookup(b).has_value());
    EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(BtbTest, CountsHitsAndMisses)
{
    Btb btb(2048, 4);
    btb.lookup(0x10);
    btb.update(0x10, 0x20);
    btb.lookup(0x10);
    EXPECT_EQ(btb.misses(), 1u);
    EXPECT_EQ(btb.hits(), 1u);
}

// ---- RAS -------------------------------------------------------------------

TEST(RasTest, PushPopLifo)
{
    Ras ras(32);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(RasTest, DepthSaturatesAtCapacity)
{
    Ras ras(4);
    for (int i = 0; i < 10; ++i)
        ras.push(i);
    EXPECT_EQ(ras.depth(), 4u);
}

TEST(RasTest, OverflowWrapsAndLosesOldest)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
}

TEST(RasTest, SaveRestoreRecoversPops)
{
    // Restore undoes pops exactly (the slots still hold their values).
    Ras ras(8);
    ras.push(0xa);
    ras.push(0xb);
    auto s = ras.save();
    ras.pop();
    ras.pop();
    ras.restore(s);
    EXPECT_EQ(ras.pop(), 0xbu);
    EXPECT_EQ(ras.pop(), 0xau);
}

TEST(RasTest, RestoreAfterOverwriteKeepsNewValue)
{
    // A push after the checkpoint overwrites the slot; like real hardware,
    // top/depth recovery cannot resurrect the overwritten entry.
    Ras ras(8);
    ras.push(0xa);
    ras.push(0xb);
    auto s = ras.save();
    ras.pop();
    ras.push(0xc); // lands in 0xb's slot
    ras.restore(s);
    EXPECT_EQ(ras.pop(), 0xcu);
    EXPECT_EQ(ras.pop(), 0xau);
}

TEST(RasTest, RejectsZeroEntries)
{
    ThrowGuard guard;
    EXPECT_THROW(Ras(0), SimError);
}

// ---- combined predictor ----------------------------------------------------

DynInstr
makeBranch(OpClass op, Addr pc, bool taken, Addr target)
{
    DynInstr in;
    in.op = op;
    in.pc = pc;
    in.branchTaken = taken;
    in.branchTarget = target;
    return in;
}

TEST(ThreadPredictorTest, UncondJumpLearnedAfterFirstSight)
{
    ThreadPredictor p(BranchConfig{});
    auto in = makeBranch(OpClass::BranchUncond, 0x100, true, 0x500);
    p.predict(in);
    EXPECT_TRUE(in.mispredicted); // BTB cold
    p.train(in);
    auto again = makeBranch(OpClass::BranchUncond, 0x100, true, 0x500);
    p.predict(again);
    EXPECT_FALSE(again.mispredicted);
}

TEST(ThreadPredictorTest, ReturnPredictedViaRas)
{
    ThreadPredictor p(BranchConfig{});
    auto call = makeBranch(OpClass::Call, 0x100, true, 0x900);
    p.predict(call);
    p.train(call);
    auto ret = makeBranch(OpClass::Return, 0x904, true, 0x104);
    p.predict(ret);
    EXPECT_FALSE(ret.mispredicted);
}

TEST(ThreadPredictorTest, MismatchedReturnMispredicts)
{
    ThreadPredictor p(BranchConfig{});
    auto ret = makeBranch(OpClass::Return, 0x904, true, 0xdead);
    p.predict(ret);
    EXPECT_TRUE(ret.mispredicted); // empty RAS predicts garbage
}

TEST(ThreadPredictorTest, SquashRecoverUndoesCallPush)
{
    ThreadPredictor p(BranchConfig{});
    auto call1 = makeBranch(OpClass::Call, 0x100, true, 0x900);
    p.predict(call1);
    // Wrong-path call fetched then squashed:
    auto call2 = makeBranch(OpClass::Call, 0x200, true, 0xa00);
    p.predict(call2);
    p.squashRecover(call2);
    auto ret = makeBranch(OpClass::Return, 0x904, true, 0x104);
    p.predict(ret);
    EXPECT_FALSE(ret.mispredicted)
        << "squashed call should not shift the RAS";
}

TEST(ThreadPredictorTest, SquashRecoverRestoresHistory)
{
    ThreadPredictor p(BranchConfig{});
    auto b1 = makeBranch(OpClass::BranchCond, 0x10, true, 0x40);
    p.predict(b1);
    auto before = b1.predHistory;
    auto b2 = makeBranch(OpClass::BranchCond, 0x20, false, 0x60);
    p.predict(b2);
    p.squashRecover(b2);
    // Refetching b2 must see the same history b2 saw the first time.
    auto b2_again = makeBranch(OpClass::BranchCond, 0x20, false, 0x60);
    p.predict(b2_again);
    EXPECT_EQ(b2_again.predHistory, b2.predHistory);
    (void)before;
}

TEST(ThreadPredictorTest, TracksMispredictRate)
{
    ThreadPredictor p(BranchConfig{});
    auto in = makeBranch(OpClass::BranchUncond, 0x100, true, 0x500);
    p.predict(in);
    EXPECT_EQ(p.branches(), 1u);
    EXPECT_EQ(p.mispredicts(), 1u);
    EXPECT_DOUBLE_EQ(p.mispredictRate(), 1.0);
}

TEST(ThreadPredictorTest, IgnoresNonBranches)
{
    ThreadPredictor p(BranchConfig{});
    DynInstr in;
    in.op = OpClass::IntAlu;
    p.predict(in);
    p.train(in);
    EXPECT_EQ(p.branches(), 0u);
    EXPECT_FALSE(in.mispredicted);
}

TEST(ThreadPredictorTest, BiasedCondBranchConverges)
{
    ThreadPredictor p(BranchConfig{});
    int late_miss = 0;
    for (int i = 0; i < 200; ++i) {
        auto in = makeBranch(OpClass::BranchCond, 0x40, true, 0x80);
        p.predict(in);
        p.train(in);
        if (i >= 50)
            late_miss += in.mispredicted;
    }
    EXPECT_EQ(late_miss, 0);
}

} // namespace
} // namespace smtavf
