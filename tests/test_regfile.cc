/**
 * @file
 * Unit tests for the physical register file and its AVF interval rules.
 */

#include <gtest/gtest.h>

#include "core/regfile.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

class RegFileTest : public ::testing::Test
{
  protected:
    RegFileTest() : ledger(2), rf(8, 8, ledger, true) {}

    AvfLedger ledger;
    PhysRegFile rf;
};

TEST_F(RegFileTest, RegistersBitsWithLedger)
{
    EXPECT_EQ(ledger.structureBits(HwStruct::RegFile), 16u * 64);
}

TEST_F(RegFileTest, AllocReturnsDistinctRegisters)
{
    auto a = rf.alloc(false, 0, 0);
    auto b = rf.alloc(false, 0, 0);
    EXPECT_NE(a, invalidReg);
    EXPECT_NE(b, invalidReg);
    EXPECT_NE(a, b);
    EXPECT_EQ(rf.freeInt(), 6u);
}

TEST_F(RegFileTest, FpRegistersComeFromFpPool)
{
    auto f = rf.alloc(true, 0, 0);
    EXPECT_GE(static_cast<std::uint32_t>(f), rf.numInt());
    EXPECT_EQ(rf.freeFp(), 7u);
    EXPECT_EQ(rf.freeInt(), 8u);
}

TEST_F(RegFileTest, ExhaustionReturnsInvalid)
{
    for (int i = 0; i < 8; ++i)
        EXPECT_NE(rf.alloc(false, 0, 0), invalidReg);
    EXPECT_EQ(rf.alloc(false, 0, 0), invalidReg);
    EXPECT_NE(rf.alloc(true, 0, 0), invalidReg) << "pools are separate";
}

TEST_F(RegFileTest, ReadinessFollowsWriteback)
{
    auto r = rf.alloc(false, 0, 0);
    EXPECT_FALSE(rf.isReady(r));
    rf.markWritten(r, 5);
    EXPECT_TRUE(rf.isReady(r));
    EXPECT_TRUE(rf.isReady(invalidReg)) << "no-register is always ready";
}

TEST_F(RegFileTest, LiveValueIntervals)
{
    auto r = rf.alloc(false, 0, 10);
    rf.markWritten(r, 30);
    rf.noteRead(r, 50);
    rf.release(r, 100, false);
    // [10,30) alloc window un-ACE; [30,50] value ACE; (50,100] un-ACE.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::RegFile), 64u * 20);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::RegFile), 64u * (20 + 50));
}

TEST_F(RegFileTest, DeadProducerValueIsUnAce)
{
    auto r = rf.alloc(false, 0, 10);
    rf.markWritten(r, 30);
    rf.release(r, 100, true);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::RegFile), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::RegFile), 64u * 90);
}

TEST_F(RegFileTest, AllocWindowAblationCountsItAce)
{
    AvfLedger l(1);
    PhysRegFile rf2(4, 4, l, /*alloc_unace=*/false);
    auto r = rf2.alloc(false, 0, 10);
    rf2.markWritten(r, 30);
    rf2.noteRead(r, 50);
    rf2.release(r, 100, false);
    // Ablation: [10,30) also ACE.
    EXPECT_EQ(l.aceBitCycles(HwStruct::RegFile), 64u * (20 + 20));
}

TEST_F(RegFileTest, SquashedRegisterIsFullyUnAce)
{
    auto r = rf.alloc(false, 1, 10);
    rf.markWritten(r, 20);
    rf.noteRead(r, 25);
    rf.releaseSquashed(r, 60);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::RegFile), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::RegFile), 64u * 50);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::RegFile, 1), 0u);
}

TEST_F(RegFileTest, ReleaseRecyclesRegister)
{
    auto r = rf.alloc(false, 0, 0);
    rf.markWritten(r, 1);
    rf.release(r, 2, false);
    EXPECT_EQ(rf.freeInt(), 8u);
    auto r2 = rf.alloc(false, 0, 3);
    EXPECT_NE(r2, invalidReg);
    EXPECT_FALSE(rf.isReady(r2)) << "recycled register must reset state";
}

TEST_F(RegFileTest, NeverWrittenReleaseIsUnAce)
{
    auto r = rf.alloc(false, 0, 10);
    rf.releaseSquashed(r, 40);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::RegFile), 64u * 30);
}

TEST_F(RegFileTest, FinalizeClosesLiveRegistersAce)
{
    auto r = rf.alloc(false, 0, 10);
    rf.markWritten(r, 30);
    auto unwritten = rf.alloc(false, 0, 20);
    rf.finalizeAll(100);
    // Written: [10,30) un-ACE + [30,100] ACE. Unwritten: [20,100] un-ACE.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::RegFile), 64u * 70);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::RegFile), 64u * (20 + 80));
    (void)unwritten;
}

TEST_F(RegFileTest, NoteReadClampsToRelease)
{
    auto r = rf.alloc(false, 0, 0);
    rf.markWritten(r, 10);
    rf.noteRead(r, 500); // read recorded beyond release time
    rf.release(r, 100, false);
    // The value interval is clamped to the release cycle.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::RegFile), 64u * 90);
}

TEST_F(RegFileTest, DoubleReleasePanics)
{
    ThrowGuard guard;
    auto r = rf.alloc(false, 0, 0);
    rf.markWritten(r, 1);
    rf.release(r, 2, false);
    EXPECT_THROW(rf.release(r, 3, false), SimError);
}

TEST_F(RegFileTest, WritebackToFreeRegisterPanics)
{
    ThrowGuard guard;
    EXPECT_THROW(rf.markWritten(3, 1), SimError);
}

TEST_F(RegFileTest, PerThreadAttribution)
{
    auto r0 = rf.alloc(false, 0, 0);
    auto r1 = rf.alloc(false, 1, 0);
    rf.markWritten(r0, 5);
    rf.markWritten(r1, 5);
    rf.noteRead(r0, 10);
    rf.noteRead(r1, 10);
    rf.release(r0, 20, false);
    rf.release(r1, 20, false);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::RegFile, 0), 64u * 5);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::RegFile, 1), 64u * 5);
}

} // namespace
} // namespace smtavf
