/**
 * @file
 * Tests for the workload-mix registry, Table 1/2 rendering and the
 * experiment helpers (including the Figure-3 single-thread replay).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "base/env.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(MixRegistry, Table2HasSeventeenMixes)
{
    // 6 two-thread + 6 four-thread + 5 eight-thread.
    unsigned table2 = 0;
    for (const auto &m : allMixes())
        if (m.name.rfind("fig3", 0) != 0)
            ++table2;
    EXPECT_EQ(table2, 17u);
}

TEST(MixRegistry, ContextsFilter)
{
    EXPECT_EQ(mixesWithContexts(2).size(), 6u);
    EXPECT_EQ(mixesWithContexts(4).size(), 6u);
    EXPECT_EQ(mixesWithContexts(8).size(), 5u);
}

TEST(MixRegistry, TypeFilter)
{
    auto mem4 = mixesOf(4, MixType::Mem);
    ASSERT_EQ(mem4.size(), 2u);
    for (const auto &m : mem4)
        EXPECT_EQ(m.type, MixType::Mem);
    // The paper only forms one 8-context MEM group.
    EXPECT_EQ(mixesOf(8, MixType::Mem).size(), 1u);
}

TEST(MixRegistry, EveryMixSizeMatchesContexts)
{
    for (const auto &m : allMixes())
        EXPECT_EQ(m.benchmarks.size(), m.contexts) << m.name;
}

TEST(MixRegistry, MixTypeConstructionRules)
{
    // CPU mixes contain only CPU-class programs, MEM only MEM-class.
    for (const auto &m : allMixes()) {
        unsigned mem_count = 0;
        for (const auto &b : m.benchmarks)
            mem_count += findProfile(b).category == BenchClass::Mem;
        if (m.type == MixType::Cpu)
            EXPECT_EQ(mem_count, 0u) << m.name;
        else if (m.type == MixType::Mem)
            EXPECT_EQ(mem_count, m.contexts) << m.name;
        else
            EXPECT_EQ(mem_count, m.contexts / 2) << m.name;
    }
}

TEST(MixRegistry, UnknownMixIsFatal)
{
    ThrowGuard guard;
    EXPECT_THROW(findMix("9ctx-zzz"), SimError);
}

TEST(MixRegistry, Fig3MixesExist)
{
    EXPECT_EQ(fig3Mix(MixType::Cpu).contexts, 4u);
    EXPECT_EQ(fig3Mix(MixType::Mix).benchmarks[1], "mcf");
    EXPECT_EQ(fig3Mix(MixType::Mem).benchmarks[3], "swim");
}

TEST(Tables, Table1ListsKeyParameters)
{
    auto s = table1String(table1Config(4));
    EXPECT_NE(s.find("8-wide fetch/issue/commit"), std::string::npos);
    EXPECT_NE(s.find("ICOUNT"), std::string::npos);
    EXPECT_NE(s.find("96"), std::string::npos);
    EXPECT_NE(s.find("2MB"), std::string::npos);
    EXPECT_NE(s.find("200 cycles access latency"), std::string::npos);
}

TEST(Tables, Table2ListsAllGroups)
{
    auto s = table2String();
    EXPECT_NE(s.find("2-Thread"), std::string::npos);
    EXPECT_NE(s.find("8-Thread"), std::string::npos);
    EXPECT_NE(s.find("mcf"), std::string::npos);
    EXPECT_EQ(s.find("fig3"), std::string::npos);
}

TEST(ExperimentHelpers, DefaultBudgetScalesWithContexts)
{
    EXPECT_EQ(defaultBudget(4), 2 * defaultBudget(2));
    EXPECT_EQ(defaultBudget(8), 4 * defaultBudget(2));
}

TEST(ExperimentHelpers, BenchScaleReadsEnvironment)
{
    const char *saved = ::getenv("SMTAVF_SCALE");
    std::string saved_value = saved ? saved : "";

    ::setenv("SMTAVF_SCALE", "7", 1);
    EXPECT_EQ(benchScale(), 7u);
    EXPECT_EQ(defaultBudget(2), 7u * 50000u);
    ::setenv("SMTAVF_SCALE", "garbage", 1);
    EXPECT_EQ(benchScale(), 1u) << "unparsable values fall back to 1";
    ::setenv("SMTAVF_SCALE", "0", 1);
    EXPECT_EQ(benchScale(), 1u) << "scale clamps to at least 1";
    ::unsetenv("SMTAVF_SCALE");
    EXPECT_EQ(benchScale(), 1u);

    if (saved)
        ::setenv("SMTAVF_SCALE", saved_value.c_str(), 1);
}

TEST(ExperimentHelpers, RunMixProducesNamedResult)
{
    auto r = runMix(findMix("2ctx-cpu-A"), FetchPolicyKind::DWarn, 4000);
    EXPECT_EQ(r.mixName, "2ctx-cpu-A");
    EXPECT_EQ(r.policyName, "DWarn");
    EXPECT_GE(r.totalCommitted, 4000u);
}

TEST(ExperimentHelpers, SingleThreadBaselineRunsExactWork)
{
    auto cfg = table1Config(2);
    auto st = runSingleThreadBaseline(cfg, findMix("2ctx-cpu-A"), 1, 5000);
    ASSERT_EQ(st.threads.size(), 1u);
    EXPECT_EQ(st.threads[0].benchmark, "eon");
    EXPECT_GE(st.totalCommitted, 5000u);
}

TEST(ExperimentHelpers, BaselineOutOfRangeIsFatal)
{
    ThrowGuard guard;
    auto cfg = table1Config(2);
    EXPECT_THROW(
        runSingleThreadBaseline(cfg, findMix("2ctx-cpu-A"), 2, 1000),
        SimError);
}

TEST(ExperimentHelpers, MeanHelpers)
{
    auto a = runMix(findMix("2ctx-cpu-A"), FetchPolicyKind::Icount, 3000);
    auto b = runMix(findMix("2ctx-cpu-B"), FetchPolicyKind::Icount, 3000);
    std::vector<SimResult> runs{a, b};
    EXPECT_NEAR(meanIpc(runs), (a.ipc + b.ipc) / 2, 1e-12);
    EXPECT_NEAR(meanAvf(runs, HwStruct::IQ),
                (a.avf.avf(HwStruct::IQ) + b.avf.avf(HwStruct::IQ)) / 2,
                1e-12);
    ThrowGuard guard;
    EXPECT_THROW(meanIpc({}), SimError);
}

} // namespace
} // namespace smtavf
