/**
 * @file
 * End-to-end smoke test: a 2-context mix runs to completion and produces
 * sane top-level numbers.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace smtavf
{
namespace
{

TEST(Smoke, TwoContextMixRuns)
{
    auto result = runMix(findMix("2ctx-cpu-A"), FetchPolicyKind::Icount,
                         10000);
    EXPECT_GE(result.totalCommitted, 10000u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GE(result.avf.avf(HwStruct::IQ), 0.0);
    EXPECT_LE(result.avf.avf(HwStruct::IQ), 1.0);
}

} // namespace
} // namespace smtavf
