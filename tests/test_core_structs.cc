/**
 * @file
 * Unit tests for rename map, ROB, IQ, LSQ and FU pool.
 */

#include <gtest/gtest.h>

#include "core/fu_pool.hh"
#include "core/iq.hh"
#include "core/lsq.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

InstPtr
makeInstr(ThreadId tid, SeqNum seq, OpClass op = OpClass::IntAlu)
{
    auto in = std::make_shared<DynInstr>();
    in->tid = tid;
    in->seq = seq;
    in->globalSeq = seq;
    in->op = op;
    return in;
}

// ---- rename ---------------------------------------------------------------

TEST(RenameMapTest, UnmappedLookupIsInvalid)
{
    RenameMap m;
    EXPECT_EQ(m.lookup(5), invalidReg);
    EXPECT_EQ(m.lookup(invalidReg), invalidReg);
}

TEST(RenameMapTest, ZeroRegistersNeverMap)
{
    RenameMap m;
    m.set(0, 17);
    EXPECT_EQ(m.lookup(0), invalidReg);
    EXPECT_EQ(m.lookup(numArchIntRegs), invalidReg);
}

TEST(RenameMapTest, SetReturnsDisplacedMapping)
{
    RenameMap m;
    EXPECT_EQ(m.set(5, 100), invalidReg);
    EXPECT_EQ(m.set(5, 101), 100);
    EXPECT_EQ(m.lookup(5), 101);
}

TEST(RenameMapTest, WalkBackRecovery)
{
    RenameMap m;
    m.set(5, 100);
    auto old = m.set(5, 101); // speculative
    m.set(5, old);            // squash walk-back
    EXPECT_EQ(m.lookup(5), 100);
}

TEST(RenameMapTest, BadRegisterPanics)
{
    ThrowGuard guard;
    RenameMap m;
    EXPECT_THROW(m.lookup(numArchRegs), SimError);
    EXPECT_THROW(m.set(-2, 3), SimError);
}

// ---- ROB -------------------------------------------------------------------

TEST(RobTest, InOrderPushPop)
{
    Rob rob(4);
    auto a = makeInstr(0, 1);
    auto b = makeInstr(0, 2);
    rob.push(a);
    rob.push(b);
    EXPECT_EQ(rob.front(), a);
    rob.popFront();
    EXPECT_EQ(rob.front(), b);
}

TEST(RobTest, FullAndCapacity)
{
    Rob rob(2);
    rob.push(makeInstr(0, 1));
    EXPECT_FALSE(rob.full());
    rob.push(makeInstr(0, 2));
    EXPECT_TRUE(rob.full());
    ThrowGuard guard;
    EXPECT_THROW(rob.push(makeInstr(0, 3)), SimError);
}

TEST(RobTest, OutOfOrderPushPanics)
{
    ThrowGuard guard;
    Rob rob(4);
    rob.push(makeInstr(0, 5));
    EXPECT_THROW(rob.push(makeInstr(0, 5)), SimError);
    EXPECT_THROW(rob.push(makeInstr(0, 4)), SimError);
}

TEST(RobTest, SquashAfterWalksYoungestFirst)
{
    Rob rob(8);
    for (SeqNum s = 1; s <= 5; ++s)
        rob.push(makeInstr(0, s));
    std::vector<SeqNum> squashed;
    rob.squashAfter(2, [&](const InstPtr &in) {
        squashed.push_back(in->seq);
    });
    EXPECT_EQ(squashed, (std::vector<SeqNum>{5, 4, 3}));
    EXPECT_EQ(rob.size(), 2u);
}

TEST(RobTest, EmptyFrontIsNull)
{
    Rob rob(2);
    EXPECT_EQ(rob.front(), nullptr);
    ThrowGuard guard;
    EXPECT_THROW(rob.popFront(), SimError);
}

// ---- IQ --------------------------------------------------------------------

TEST(IqTest, CapacityAndFreeSlots)
{
    IssueQueue iq(3);
    EXPECT_EQ(iq.freeSlots(), 3u);
    iq.insert(makeInstr(0, 1));
    EXPECT_EQ(iq.freeSlots(), 2u);
    EXPECT_FALSE(iq.full());
}

TEST(IqTest, InsertSetsInIqFlag)
{
    IssueQueue iq(4);
    auto in = makeInstr(0, 1);
    iq.insert(in);
    EXPECT_TRUE(in->inIq);
    iq.remove(in);
    EXPECT_FALSE(in->inIq);
    EXPECT_EQ(iq.size(), 0u);
}

TEST(IqTest, RemoveUnknownPanics)
{
    ThrowGuard guard;
    IssueQueue iq(4);
    EXPECT_THROW(iq.remove(makeInstr(0, 1)), SimError);
}

TEST(IqTest, RemoveSquashedFiltersByThreadAndSeq)
{
    IssueQueue iq(8);
    auto a = makeInstr(0, 1);
    auto b = makeInstr(1, 2);
    auto c = makeInstr(0, 3);
    iq.insert(a);
    iq.insert(b);
    iq.insert(c);
    iq.removeSquashed(0, 1); // removes only c
    EXPECT_EQ(iq.size(), 2u);
    EXPECT_TRUE(a->inIq);
    EXPECT_TRUE(b->inIq);
    EXPECT_FALSE(c->inIq);
}

TEST(IqTest, IterationIsAgeOrdered)
{
    IssueQueue iq(8);
    iq.insert(makeInstr(0, 1));
    iq.insert(makeInstr(1, 2));
    iq.insert(makeInstr(0, 3));
    SeqNum prev = 0;
    for (const auto &in : iq) {
        EXPECT_GT(in->globalSeq, prev);
        prev = in->globalSeq;
    }
}

// ---- LSQ -------------------------------------------------------------------

InstPtr
makeMem(ThreadId tid, SeqNum seq, OpClass op, Addr addr, std::uint8_t size)
{
    auto in = makeInstr(tid, seq, op);
    in->memAddr = addr;
    in->memSize = size;
    return in;
}

TEST(LsqTest, RejectsNonMemInstr)
{
    ThrowGuard guard;
    Lsq lsq(4);
    EXPECT_THROW(lsq.push(makeInstr(0, 1, OpClass::IntAlu)), SimError);
}

TEST(LsqTest, LoadWaitsForOlderStoreIssue)
{
    Lsq lsq(8);
    auto store = makeMem(0, 1, OpClass::Store, 0x100, 4);
    auto load = makeMem(0, 2, OpClass::Load, 0x200, 4);
    lsq.push(store);
    lsq.push(load);
    EXPECT_FALSE(lsq.loadMayIssue(load));
    store->issued = true;
    EXPECT_TRUE(lsq.loadMayIssue(load));
}

TEST(LsqTest, ForwardingRequiresOverlap)
{
    Lsq lsq(8);
    auto store = makeMem(0, 1, OpClass::Store, 0x100, 4);
    store->issued = true;
    auto hit = makeMem(0, 2, OpClass::Load, 0x100, 4);
    auto partial = makeMem(0, 3, OpClass::Load, 0x102, 4);
    auto miss = makeMem(0, 4, OpClass::Load, 0x104, 4);
    lsq.push(store);
    lsq.push(hit);
    lsq.push(partial);
    lsq.push(miss);
    EXPECT_TRUE(lsq.canForward(hit));
    EXPECT_TRUE(lsq.canForward(partial)); // byte ranges intersect
    EXPECT_FALSE(lsq.canForward(miss));
}

TEST(LsqTest, YoungerStoresDoNotForwardBackwards)
{
    Lsq lsq(8);
    auto load = makeMem(0, 1, OpClass::Load, 0x100, 4);
    auto store = makeMem(0, 2, OpClass::Store, 0x100, 4);
    store->issued = true;
    lsq.push(load);
    lsq.push(store);
    EXPECT_FALSE(lsq.canForward(load));
    EXPECT_TRUE(lsq.loadMayIssue(load));
}

TEST(LsqTest, CommitMustBeOldest)
{
    ThrowGuard guard;
    Lsq lsq(8);
    auto a = makeMem(0, 1, OpClass::Load, 0x0, 4);
    auto b = makeMem(0, 2, OpClass::Load, 0x8, 4);
    lsq.push(a);
    lsq.push(b);
    EXPECT_THROW(lsq.popCommitted(b), SimError);
    lsq.popCommitted(a);
    lsq.popCommitted(b);
    EXPECT_EQ(lsq.size(), 0u);
}

TEST(LsqTest, SquashDropsYoungTail)
{
    Lsq lsq(8);
    for (SeqNum s = 1; s <= 4; ++s)
        lsq.push(makeMem(0, s, OpClass::Load, s * 8, 4));
    lsq.squashAfter(2);
    EXPECT_EQ(lsq.size(), 2u);
}

TEST(LsqTest, FullBlocksPush)
{
    ThrowGuard guard;
    Lsq lsq(1);
    lsq.push(makeMem(0, 1, OpClass::Load, 0, 4));
    EXPECT_TRUE(lsq.full());
    EXPECT_THROW(lsq.push(makeMem(0, 2, OpClass::Load, 8, 4)), SimError);
}

// ---- FU pool ---------------------------------------------------------------

TEST(FuPoolTest, Table1Counts)
{
    FuPool pool(FuConfig{});
    EXPECT_EQ(pool.config().total(), 28u);
    EXPECT_EQ(pool.totalBits(), 28u * bits::fuLatch);
    EXPECT_EQ(pool.freeUnits(FuType::IntAlu, 0), 8u);
    EXPECT_EQ(pool.freeUnits(FuType::MemPort, 0), 4u);
}

TEST(FuPoolTest, AcquireExhaustsUnits)
{
    FuPool pool(FuConfig{});
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(pool.acquire(FuType::IntAlu, 5, 1));
    EXPECT_FALSE(pool.acquire(FuType::IntAlu, 5, 1));
    EXPECT_TRUE(pool.acquire(FuType::IntAlu, 6, 1)) << "freed next cycle";
}

TEST(FuPoolTest, DividerOccupiesForFullLatency)
{
    FuPool pool({1, 1, 1, 1, 1});
    EXPECT_TRUE(pool.acquire(FuType::IntMulDiv, 0, fuOccupancy(
                                                       OpClass::IntDiv)));
    EXPECT_FALSE(pool.acquire(FuType::IntMulDiv, 5, 1));
    EXPECT_TRUE(pool.acquire(FuType::IntMulDiv, 20, 1));
}

TEST(FuPoolTest, NoneTypeAlwaysAvailable)
{
    FuPool pool({1, 1, 1, 1, 1});
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(pool.acquire(FuType::None, 0, 1));
}

class FuMapping : public ::testing::TestWithParam<int>
{
};

TEST_P(FuMapping, EveryOpClassHasTypeLatencyOccupancy)
{
    auto op = static_cast<OpClass>(GetParam());
    EXPECT_NO_THROW(fuTypeFor(op));
    EXPECT_GE(execLatency(op), 1u);
    EXPECT_GE(fuOccupancy(op), 1u);
    EXPECT_LE(fuOccupancy(op), execLatency(op));
}

INSTANTIATE_TEST_SUITE_P(AllOps, FuMapping,
                         ::testing::Range(0,
                                          static_cast<int>(numOpClasses)));

TEST(FuMappingFixed, ExpectedAssignments)
{
    EXPECT_EQ(fuTypeFor(OpClass::BranchCond), FuType::IntAlu);
    EXPECT_EQ(fuTypeFor(OpClass::Load), FuType::MemPort);
    EXPECT_EQ(fuTypeFor(OpClass::FpDiv), FuType::FpMulDiv);
    EXPECT_EQ(fuTypeFor(OpClass::Nop), FuType::None);
    EXPECT_EQ(execLatency(OpClass::IntDiv), 20u);
    EXPECT_EQ(fuOccupancy(OpClass::FpMult), 1u) << "pipelined";
    EXPECT_EQ(fuOccupancy(OpClass::FpDiv), 12u) << "unpipelined";
}

} // namespace
} // namespace smtavf
