/**
 * @file
 * Fault-tolerance tests: run isolation and retry/quarantine in
 * runTolerant(), journal round-trips and bit-identical resume, the
 * livelock watchdog, the pipeline invariant checker, and the strict CLI
 * parsing/validation helpers. The fault-injection campaigns use
 * CampaignOptions::runFn test doubles that throw on chosen indices, so
 * every failure path is exercised deterministically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/env.hh"
#include "base/logging.hh"
#include "sim/campaign.hh"
#include "sim/errors.hh"
#include "sim/invariants.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"

namespace smtavf
{
namespace
{

constexpr std::uint64_t kBudget = 3000;

std::vector<Experiment>
fourMixCampaign()
{
    const char *names[] = {"2ctx-cpu-A", "2ctx-mix-A", "2ctx-mem-A",
                           "2ctx-cpu-B"};
    std::vector<Experiment> exps;
    for (std::size_t i = 0; i < 4; ++i) {
        Experiment e = makeExperiment(findMix(names[i]),
                                      FetchPolicyKind::Icount, kBudget);
        e.cfg.seed = 21 + i;
        exps.push_back(std::move(e));
    }
    return exps;
}

/** A configuration guaranteed to livelock: cold caches mean the first
 * instruction cannot commit before a full memory round trip (~200
 * cycles), and the watchdog window is far shorter. */
Experiment
livelockExperiment()
{
    Experiment e = makeExperiment(findMix("2ctx-mix-A"),
                                  FetchPolicyKind::Icount, kBudget);
    e.label = "livelocked";
    e.cfg.prewarmCaches = false;
    e.cfg.livelockCycles = 50;
    return e;
}

/** Bit-identical comparison of everything a SimResult reports. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.totalCommitted, b.totalCommitted);
    EXPECT_EQ(a.ipc, b.ipc); // exact, not approximate

    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        EXPECT_EQ(a.threads[t].benchmark, b.threads[t].benchmark);
        EXPECT_EQ(a.threads[t].committed, b.threads[t].committed);
        EXPECT_EQ(a.threads[t].ipc, b.threads[t].ipc);
    }

    EXPECT_EQ(a.avf.numThreads(), b.avf.numThreads());
    EXPECT_EQ(a.avf.cycles(), b.avf.cycles());
    for (std::size_t i = 0; i < numHwStructs; ++i) {
        auto s = static_cast<HwStruct>(i);
        EXPECT_EQ(a.avf.avf(s), b.avf.avf(s)) << hwStructName(s);
        EXPECT_EQ(a.avf.residualAvf(s), b.avf.residualAvf(s))
            << hwStructName(s);
        EXPECT_EQ(a.avf.occupancy(s), b.avf.occupancy(s)) << hwStructName(s);
        for (std::size_t t = 0; t < a.threads.size(); ++t) {
            auto tid = static_cast<ThreadId>(t);
            EXPECT_EQ(a.avf.threadAvf(s, tid), b.avf.threadAvf(s, tid))
                << hwStructName(s);
        }
    }

    ASSERT_EQ(a.stats.all().size(), b.stats.all().size());
    for (const auto &[name, value] : a.stats.all()) {
        ASSERT_TRUE(b.stats.has(name)) << name;
        EXPECT_EQ(value, b.stats.get(name)) << name;
    }
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path, const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::trunc);
    for (const auto &l : lines)
        out << l << '\n';
}

// --- strict numeric parsing (the CLI's flag validation) -----------------

TEST(StrictParse, AcceptsPlainDecimals)
{
    std::uint64_t v = 1;
    EXPECT_TRUE(strictParseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(strictParseU64("400000", v));
    EXPECT_EQ(v, 400000u);
    EXPECT_TRUE(strictParseU64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(StrictParse, RejectsEverythingElse)
{
    std::uint64_t v = 0;
    EXPECT_FALSE(strictParseU64(nullptr, v));
    EXPECT_FALSE(strictParseU64("", v));
    EXPECT_FALSE(strictParseU64("abc", v));
    EXPECT_FALSE(strictParseU64("12x", v));
    EXPECT_FALSE(strictParseU64("-3", v));  // no silent wrap to 2^64-3
    EXPECT_FALSE(strictParseU64("+3", v));  // signs are not digits
    EXPECT_FALSE(strictParseU64(" 3", v));
    EXPECT_FALSE(strictParseU64("3 ", v));
    EXPECT_FALSE(strictParseU64("0x10", v));
    EXPECT_FALSE(strictParseU64("18446744073709551616", v)); // overflow
}

// --- MachineConfig::validate ---------------------------------------------

TEST(ConfigValidate, DefaultAndTable1ConfigsAreValid)
{
    EXPECT_EQ(MachineConfig{}.validateMsg(), "");
    for (unsigned ctx : {1u, 2u, 4u, 8u})
        EXPECT_EQ(table1Config(ctx).validateMsg(), "") << ctx;
}

TEST(ConfigValidate, RejectsZeroAndAbsurdParameters)
{
    auto broken = [](auto mutate) {
        MachineConfig cfg;
        mutate(cfg);
        return cfg.validateMsg();
    };
    EXPECT_NE(broken([](auto &c) { c.contexts = 0; }), "");
    EXPECT_NE(broken([](auto &c) { c.contexts = maxContexts + 1; }), "");
    EXPECT_NE(broken([](auto &c) { c.fetchWidth = 0; }), "");
    EXPECT_NE(broken([](auto &c) { c.issueWidth = 4096; }), "");
    EXPECT_NE(broken([](auto &c) { c.commitWidth = 0; }), "");
    EXPECT_NE(broken([](auto &c) { c.fetchThreadsPerCycle = 0; }), "");
    EXPECT_NE(broken([](auto &c) { c.fetchThreadsPerCycle = 99; }), "");
    EXPECT_NE(broken([](auto &c) { c.frontLatency = 500; }), "");
    EXPECT_NE(broken([](auto &c) { c.fetchQueueSize = 0; }), "");
    EXPECT_NE(broken([](auto &c) { c.iqSize = 0; }), "");
    EXPECT_NE(broken([](auto &c) { c.robSize = 1u << 21; }), "");
    EXPECT_NE(broken([](auto &c) { c.lsqSize = 0; }), "");
    EXPECT_NE(broken([](auto &c) { c.intPhysRegs = 8; }), "");
    EXPECT_NE(broken([](auto &c) { c.fpPhysRegs = 1u << 21; }), "");
    EXPECT_NE(broken([](auto &c) { c.mem.memLatency = 0; }), "");
    EXPECT_NE(broken([](auto &c) { c.mem.memLatency = 1u << 21; }), "");
    EXPECT_NE(broken([](auto &c) { c.livelockCycles = 2; }), "");
    // 0 disables the watchdog and is valid.
    EXPECT_EQ(broken([](auto &c) { c.livelockCycles = 0; }), "");
}

TEST(ConfigValidate, FatalPathThrowsUnderTestRedirect)
{
    MachineConfig cfg;
    cfg.contexts = 0;
    setLoggingThrows(true);
    EXPECT_THROW(cfg.validate(), SimError);
    setLoggingThrows(false);
}

// --- livelock watchdog ----------------------------------------------------

TEST(Livelock, WatchdogRaisesStructuredErrorWithinBound)
{
    Experiment e = livelockExperiment();
    Simulator sim(e.cfg, e.mix);
    try {
        sim.run(kBudget);
        FAIL() << "expected LivelockError";
    } catch (const LivelockError &err) {
        // Fires as soon as the window is exceeded, long before the
        // memory round trip that would unwedge a cold fetch.
        EXPECT_EQ(err.window, 50u);
        EXPECT_GT(err.cycle, err.window);
        EXPECT_LT(err.cycle, 500u);
        EXPECT_EQ(err.mixName, "2ctx-mix-A");
        ASSERT_EQ(err.threads.size(), 2u);
        for (const auto &t : err.threads)
            EXPECT_EQ(t.committed, 0u);
        EXPECT_NE(std::string(err.what()).find("livelock"),
                  std::string::npos);
        EXPECT_FALSE(err.stateDump.empty());
    }
}

TEST(Livelock, DisabledWatchdogLetsColdStartRecover)
{
    Experiment e = livelockExperiment();
    e.cfg.livelockCycles = 0; // off: the cold start resolves eventually
    Simulator sim(e.cfg, e.mix);
    auto r = sim.run(500); // tiny budget; just past the first round trip
    EXPECT_GE(r.totalCommitted, 500u);
}

TEST(Livelock, CampaignClassifiesItTimedOutWithoutRetry)
{
    std::vector<Experiment> exps = {
        makeExperiment(findMix("2ctx-cpu-A"), FetchPolicyKind::Icount,
                       kBudget),
        livelockExperiment(),
    };
    CampaignRunner pool(1);
    CampaignOptions opt;
    opt.retries = 3;
    auto report = runTolerant(pool, exps, opt);

    ASSERT_EQ(report.outcomes.size(), 2u);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(report.outcomes[1].status, RunStatus::TimedOut);
    // Livelock is deterministic: one attempt despite retries = 3.
    EXPECT_EQ(report.outcomes[1].attempts, 1u);
    EXPECT_NE(report.outcomes[1].error.find("livelock"), std::string::npos);

    EXPECT_FALSE(report.allOk());
    auto fr = report.failureReport();
    EXPECT_NE(fr.find("livelocked"), std::string::npos);
    EXPECT_NE(fr.find("timed-out"), std::string::npos);
}

// --- run isolation, retry and quarantine ---------------------------------

TEST(Tolerant, CampaignSurvivesInjectedFailures)
{
    auto exps = fourMixCampaign();
    int flaky_attempts = 0;
    int unstable_attempts = 0;

    CampaignOptions opt;
    opt.retries = 1;
    opt.runFn = [&](const Experiment &e, std::size_t i) -> SimResult {
        if (i == 1)
            throw std::runtime_error("deterministic corruption");
        if (i == 2 && ++flaky_attempts == 1)
            throw std::runtime_error("transient flake");
        if (i == 3)
            throw std::runtime_error("unstable " +
                                     std::to_string(++unstable_attempts));
        return runExperiment(e);
    };

    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    ASSERT_EQ(report.outcomes.size(), 4u);

    // Healthy run: one attempt, a real result.
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Ok);
    EXPECT_EQ(report.outcomes[0].attempts, 1u);
    EXPECT_GE(report.outcomes[0].result.totalCommitted, kBudget);

    // Identical failure twice: quarantined, not retried further.
    EXPECT_EQ(report.outcomes[1].status, RunStatus::Quarantined);
    EXPECT_EQ(report.outcomes[1].attempts, 2u);
    EXPECT_EQ(report.outcomes[1].error, "deterministic corruption");

    // Transient failure: the retry with the same seed succeeds.
    EXPECT_EQ(report.outcomes[2].status, RunStatus::Ok);
    EXPECT_EQ(report.outcomes[2].attempts, 2u);
    EXPECT_TRUE(report.outcomes[2].error.empty());

    // Different message every attempt: plain failure once retries run out.
    EXPECT_EQ(report.outcomes[3].status, RunStatus::Failed);
    EXPECT_EQ(report.outcomes[3].attempts, 2u);
    EXPECT_EQ(report.outcomes[3].error, "unstable 2");

    // Partial results survive and the report names every casualty.
    EXPECT_EQ(report.count(RunStatus::Ok), 2u);
    EXPECT_EQ(report.results().size(), 2u);
    auto fr = report.failureReport();
    EXPECT_NE(fr.find(exps[1].label), std::string::npos);
    EXPECT_NE(fr.find("quarantined"), std::string::npos);
    EXPECT_NE(fr.find("seed " + std::to_string(exps[1].cfg.seed)),
              std::string::npos);
}

TEST(Tolerant, QuarantineWinsOverGenerousRetryBudget)
{
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt;
    opt.retries = 10;
    unsigned calls = 0;
    opt.runFn = [&](const Experiment &, std::size_t) -> SimResult {
        ++calls;
        throw std::runtime_error("same message every time");
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Quarantined);
    EXPECT_EQ(calls, 2u); // never a third attempt
}

TEST(Tolerant, FatalRedirectIsScopedToTheCampaign)
{
    // A SMTAVF_FATAL inside a run must become a caught failure, and the
    // process-wide redirect must be restored afterwards.
    ASSERT_FALSE(loggingThrows());
    auto exps = fourMixCampaign();
    exps.resize(1);
    CampaignOptions opt;
    opt.retries = 0;
    opt.runFn = [](const Experiment &, std::size_t) -> SimResult {
        SMTAVF_FATAL("config exploded mid-run");
        return {};
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.outcomes[0].status, RunStatus::Failed);
    EXPECT_NE(report.outcomes[0].error.find("config exploded"),
              std::string::npos);
    EXPECT_FALSE(loggingThrows());
}

TEST(Tolerant, CancelFlagStopsDispatchButKeepsFinishedWork)
{
    auto exps = fourMixCampaign();
    std::atomic<bool> cancel{false};
    CampaignOptions opt;
    opt.cancel = &cancel;
    opt.runFn = [&](const Experiment &e, std::size_t i) {
        auto r = runExperiment(e);
        if (i == 0)
            cancel.store(true); // the SIGINT handler's effect
        return r;
    };
    CampaignRunner pool(1); // serial: indices run in submission order
    auto report = runTolerant(pool, exps, opt);

    EXPECT_EQ(report.outcomes[0].status, RunStatus::Ok);
    for (std::size_t i = 1; i < 4; ++i) {
        EXPECT_EQ(report.outcomes[i].status, RunStatus::TimedOut) << i;
        EXPECT_EQ(report.outcomes[i].attempts, 0u) << i;
        EXPECT_NE(report.outcomes[i].error.find("not started"),
                  std::string::npos);
    }
}

TEST(Tolerant, SoftTimeoutExpiresUnstartedRuns)
{
    auto exps = fourMixCampaign();
    CampaignOptions opt;
    opt.softTimeoutSeconds = 1e-9; // already expired at dispatch time
    CampaignRunner pool(2);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.count(RunStatus::TimedOut), 4u);
    for (const auto &o : report.outcomes)
        EXPECT_EQ(o.attempts, 0u);
}

TEST(Tolerant, StatusNamesAreStable)
{
    EXPECT_STREQ(runStatusName(RunStatus::Ok), "ok");
    EXPECT_STREQ(runStatusName(RunStatus::Failed), "failed");
    EXPECT_STREQ(runStatusName(RunStatus::TimedOut), "timed-out");
    EXPECT_STREQ(runStatusName(RunStatus::Quarantined), "quarantined");
}

// --- journal: fingerprints, round trip, resume ----------------------------

TEST(Journal, FingerprintIsStableAndSemanticsSensitive)
{
    auto exps = fourMixCampaign();
    const Experiment &e = exps[0];
    auto fp = experimentFingerprint(e);
    EXPECT_EQ(fp, experimentFingerprint(e)); // stable

    auto mutated = [&](auto mutate) {
        Experiment m = e;
        mutate(m);
        return experimentFingerprint(m);
    };
    // Cosmetic and robustness knobs do not change identity...
    EXPECT_EQ(fp, mutated([](auto &m) { m.label = "renamed"; }));
    EXPECT_EQ(fp, mutated([](auto &m) { m.cfg.livelockCycles = 777; }));
    EXPECT_EQ(fp, mutated([](auto &m) { m.cfg.invariantCheckCycles = 3; }));
    // ...everything semantic does.
    EXPECT_NE(fp, mutated([](auto &m) { m.cfg.seed += 1; }));
    EXPECT_NE(fp, mutated([](auto &m) { m.budget += 1; }));
    EXPECT_NE(fp, mutated([](auto &m) { m.cfg.iqSize -= 1; }));
    EXPECT_NE(fp, mutated([](auto &m) { m.cfg.iqPartitioned = true; }));
    EXPECT_NE(fp, mutated([](auto &m) { m.cfg.mem.memLatency += 1; }));
    EXPECT_NE(fp, mutated([](auto &m) {
        m.cfg.fetchPolicy = FetchPolicyKind::Flush;
    }));
    EXPECT_NE(fp, mutated([](auto &m) { m.mix = findMix("2ctx-mem-B"); }));
    EXPECT_NE(fp, mutated([](auto &m) { m.cfg.avf.deadCodeAnalysis = false; }));

    // An explicit budget equal to the default resolves identically.
    Experiment d = e;
    d.budget = 0;
    Experiment x = e;
    x.budget = defaultBudget(e.mix.contexts);
    EXPECT_EQ(experimentFingerprint(d), experimentFingerprint(x));
}

TEST(Journal, SerializedRunParsesBackBitIdentical)
{
    auto exps = fourMixCampaign();
    auto fp = experimentFingerprint(exps[0]);
    SimResult r = runExperiment(exps[0]);

    auto line = serializeRun(fp, r);
    std::uint64_t fp2 = 0;
    SimResult back;
    ASSERT_TRUE(parseRun(line, fp2, back));
    EXPECT_EQ(fp, fp2);
    expectIdentical(r, back);
}

TEST(Journal, LoaderSkipsTornAndForeignLines)
{
    auto path = ::testing::TempDir() + "torn.journal";
    std::remove(path.c_str());
    auto exps = fourMixCampaign();
    SimResult r = runExperiment(exps[0]);
    {
        RunJournal j(path);
        j.append(experimentFingerprint(exps[0]), r);
        j.append(experimentFingerprint(exps[1]), r);
    }
    {
        // A crash mid-write leaves a torn line; hand edits leave junk.
        std::ofstream out(path, std::ios::app);
        out << "run v1 fp=dead mix=torn poli";
        out << "\nnot a journal line at all\n";
    }
    std::size_t skipped = 0;
    auto loaded = loadJournal(path, &skipped);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(skipped, 2u);
    ASSERT_TRUE(loaded.count(experimentFingerprint(exps[0])));
    expectIdentical(loaded[experimentFingerprint(exps[0])], r);
}

TEST(Journal, MissingFileIsAnEmptyJournal)
{
    auto loaded =
        loadJournal(::testing::TempDir() + "does-not-exist.journal");
    EXPECT_TRUE(loaded.empty());
}

TEST(Journal, FailedRunsAreNeverJournaled)
{
    auto path = ::testing::TempDir() + "failures.journal";
    std::remove(path.c_str());
    auto exps = fourMixCampaign();
    CampaignOptions opt;
    opt.journalPath = path;
    opt.retries = 0;
    opt.runFn = [](const Experiment &e, std::size_t i) -> SimResult {
        if (i == 2)
            throw std::runtime_error("broken run");
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto report = runTolerant(pool, exps, opt);
    EXPECT_EQ(report.count(RunStatus::Ok), 3u);

    auto loaded = loadJournal(path);
    EXPECT_EQ(loaded.size(), 3u);
    EXPECT_FALSE(loaded.count(experimentFingerprint(exps[2])));
}

/**
 * The acceptance property: interrupt a campaign partway, resume it from
 * the journal, and the combined results are bit-identical to the
 * uninterrupted campaign — for serial and parallel pools alike.
 */
void
resumeDifferential(unsigned jobs)
{
    auto exps = fourMixCampaign();
    CampaignRunner pool(jobs);

    // The uninterrupted reference.
    auto reference = runTolerant(pool, exps, {});
    ASSERT_TRUE(reference.allOk());

    // A journaled full campaign...
    auto full_path = ::testing::TempDir() + "full-" +
                     std::to_string(jobs) + ".journal";
    std::remove(full_path.c_str());
    CampaignOptions jopt;
    jopt.journalPath = full_path;
    ASSERT_TRUE(runTolerant(pool, exps, jopt).allOk());

    // ...chopped after two completed records, as a SIGINT would leave it.
    auto lines = readLines(full_path);
    ASSERT_EQ(lines.size(), 5u); // header + 4 records
    lines.resize(3);
    auto part_path = ::testing::TempDir() + "partial-" +
                     std::to_string(jobs) + ".journal";
    writeLines(part_path, lines);

    // Resume must replay the two journaled runs and re-run the rest.
    CampaignOptions ropt;
    ropt.journalPath = part_path;
    ropt.resume = true;
    auto resumed = runTolerant(pool, exps, ropt);
    ASSERT_TRUE(resumed.allOk());
    std::size_t replayed = 0;
    for (const auto &o : resumed.outcomes)
        replayed += o.fromJournal ? 1 : 0;
    EXPECT_EQ(replayed, 2u);

    for (std::size_t i = 0; i < exps.size(); ++i)
        expectIdentical(resumed.outcomes[i].result,
                        reference.outcomes[i].result);

    // The resumed journal is now complete and loadable.
    EXPECT_EQ(loadJournal(part_path).size(), 4u);
}

TEST(Journal, ResumeIsBitIdenticalSerial) { resumeDifferential(1); }

TEST(Journal, ResumeIsBitIdenticalParallel) { resumeDifferential(4); }

TEST(Journal, ResumeAfterInjectedMidFlightFailures)
{
    // The campaign "dies" mid-flight: runs 2 and 3 fail on every attempt.
    // The journal keeps runs 0 and 1; the resumed campaign replays them
    // and re-runs the casualties, matching an uninterrupted serial loop
    // bit for bit.
    auto exps = fourMixCampaign();
    auto path = ::testing::TempDir() + "midflight.journal";
    std::remove(path.c_str());

    CampaignOptions first;
    first.journalPath = path;
    first.retries = 0;
    first.runFn = [](const Experiment &e, std::size_t i) -> SimResult {
        if (i >= 2)
            throw std::runtime_error("worker killed");
        return runExperiment(e);
    };
    CampaignRunner pool(1);
    auto crashed = runTolerant(pool, exps, first);
    EXPECT_EQ(crashed.count(RunStatus::Ok), 2u);

    CampaignOptions second;
    second.journalPath = path;
    second.resume = true;
    auto resumed = runTolerant(pool, exps, second);
    ASSERT_TRUE(resumed.allOk());
    EXPECT_TRUE(resumed.outcomes[0].fromJournal);
    EXPECT_TRUE(resumed.outcomes[1].fromJournal);
    EXPECT_FALSE(resumed.outcomes[2].fromJournal);
    EXPECT_FALSE(resumed.outcomes[3].fromJournal);

    for (std::size_t i = 0; i < exps.size(); ++i)
        expectIdentical(resumed.outcomes[i].result, runExperiment(exps[i]));
}

TEST(Tolerant, MatchesPlainSerialExecution)
{
    // The tolerant machinery must not perturb healthy runs: outcomes
    // equal a plain runExperiment() loop bit for bit.
    auto exps = fourMixCampaign();
    CampaignRunner pool(2);
    auto report = runTolerant(pool, exps, {});
    ASSERT_TRUE(report.allOk());
    for (std::size_t i = 0; i < exps.size(); ++i)
        expectIdentical(report.outcomes[i].result, runExperiment(exps[i]));
}

// --- invariant checker ----------------------------------------------------

TEST(Invariants, CleanRunPassesEveryCycleChecks)
{
    auto exps = fourMixCampaign();
    Experiment e = exps[1];
    e.cfg.invariantCheckCycles = 1; // hottest possible cadence
    Simulator sim(e.cfg, e.mix);
    auto r = sim.run(2000);
    EXPECT_GE(r.totalCommitted, 2000u);
}

TEST(Invariants, DetectsSeededFreeListCorruption)
{
    auto exps = fourMixCampaign();
    Simulator sim(exps[0].cfg, exps[0].mix);
    auto &core = sim.core();
    for (int i = 0; i < 200; ++i)
        core.tick();
    ASSERT_NO_THROW(checkInvariants(core, sim.ledger(), core.now()));

    // Duplicate one free-list entry: a register now exists "twice", the
    // exact shape of a double-free bug.
    auto &rf = core.regfileRef();
    ASSERT_GE(rf.freeList(false).size(), 2u);
    rf.debugCorruptFreeList(false, 0, rf.freeList(false)[1]);
    try {
        checkInvariants(core, sim.ledger(), core.now());
        FAIL() << "expected InvariantError";
    } catch (const InvariantError &err) {
        EXPECT_EQ(err.invariant, "regfile.freelist");
        EXPECT_NE(std::string(err.what()).find("twice"), std::string::npos);
        EXPECT_FALSE(err.stateDump.empty());
    }
}

TEST(Invariants, DetectsOutOfBankCorruption)
{
    auto exps = fourMixCampaign();
    Simulator sim(exps[0].cfg, exps[0].mix);
    auto &core = sim.core();
    for (int i = 0; i < 200; ++i)
        core.tick();

    // Point an int free-list slot into the fp bank.
    auto &rf = core.regfileRef();
    rf.debugCorruptFreeList(false, 0,
                            static_cast<RegIndex>(rf.numInt()));
    EXPECT_THROW(checkInvariants(core, sim.ledger(), core.now()),
                 InvariantError);
}

TEST(Invariants, SimulatorPeriodicCheckCatchesCorruptionMidRun)
{
    // Corrupt the machine, then let Simulator::run()'s periodic check
    // (rather than a direct call) discover it: the campaign-facing path.
    auto exps = fourMixCampaign();
    Experiment e = exps[0];
    e.cfg.invariantCheckCycles = 16;
    Simulator sim(e.cfg, e.mix);
    auto &rf = sim.core().regfileRef();
    rf.debugCorruptFreeList(false, 0, rf.freeList(false)[1]);
    EXPECT_THROW(sim.run(kBudget), InvariantError);
}

} // namespace
} // namespace smtavf
