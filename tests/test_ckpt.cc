/**
 * @file
 * Checkpoint/restore subsystem tests (src/ckpt/, docs/CHECKPOINT.md):
 *
 *  - Serializer/Deserializer wire-format round trips and the bounds
 *    checks that turn truncated payloads into CheckpointError;
 *  - checkpoint envelope encode/decode, file IO, and every rejection
 *    path (magic, version, CRC, trailing garbage);
 *  - the restore contract: a run restored from a mid-run checkpoint is
 *    bit-identical (serializeRun wire bytes) to the run that captured
 *    the checkpoint and kept going;
 *  - warmup equivalence: `RunControls::warmup` inside one run produces
 *    the same result as captureWarmupCheckpoint() + restore() + run(),
 *    which is the property shared-warmup campaigns rest on;
 *  - fingerprint verification: wrong seed, wrong mix and (for non-warmup
 *    checkpoints) wrong protection are rejected; warmup checkpoints are
 *    deliberately protection-agnostic;
 *  - the AVF interval series: row deltas conserve the ledger's totals.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "avf/ledger.hh"
#include "base/logging.hh"
#include "ckpt/checkpoint.hh"
#include "ckpt/serializer.hh"
#include "policy/prat.hh"
#include "protect/scheme.hh"
#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/simulator.hh"
#include "workload/mixes.hh"

namespace smtavf
{
namespace
{

/** Fatal-to-exception redirect for guard-path tests. */
class LoggingThrows
{
  public:
    LoggingThrows() : prev_(loggingThrows()) { setLoggingThrows(true); }
    ~LoggingThrows() { setLoggingThrows(prev_); }

  private:
    bool prev_;
};

TEST(Serializer, ScalarAndContainerRoundTrip)
{
    Serializer ser;
    ser(true);
    ser(false);
    ser(std::uint8_t{0xab});
    ser(std::uint16_t{0xbeef});
    ser(std::uint32_t{0xdeadbeef});
    ser(std::uint64_t{0x0123456789abcdefULL});
    ser(std::int32_t{-42});
    ser(std::int64_t{-7'000'000'000LL});
    ser(double{-0.0});
    ser(double{1.0 / 3.0});
    ser(std::string("hello\0world", 11));
    ser(std::vector<std::uint64_t>{1, 2, 3});
    ser(std::array<double, 2>{0.5, -2.25});

    Deserializer des(ser.buffer());
    bool b1 = false, b2 = true;
    std::uint8_t u8 = 0;
    std::uint16_t u16 = 0;
    std::uint32_t u32 = 0;
    std::uint64_t u64 = 0;
    std::int32_t i32 = 0;
    std::int64_t i64 = 0;
    double d1 = 1.0, d2 = 0.0;
    std::string s;
    std::vector<std::uint64_t> v;
    std::array<double, 2> a{};
    des(b1);
    des(b2);
    des(u8);
    des(u16);
    des(u32);
    des(u64);
    des(i32);
    des(i64);
    des(d1);
    des(d2);
    des(s);
    des(v);
    des(a);

    EXPECT_TRUE(b1);
    EXPECT_FALSE(b2);
    EXPECT_EQ(u8, 0xab);
    EXPECT_EQ(u16, 0xbeef);
    EXPECT_EQ(u32, 0xdeadbeefu);
    EXPECT_EQ(u64, 0x0123456789abcdefULL);
    EXPECT_EQ(i32, -42);
    EXPECT_EQ(i64, -7'000'000'000LL);
    EXPECT_TRUE(std::signbit(d1));
    EXPECT_EQ(d1, 0.0);
    EXPECT_EQ(d2, 1.0 / 3.0); // bit-exact, not a parse
    EXPECT_EQ(s, std::string("hello\0world", 11));
    EXPECT_EQ(v, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(a[0], 0.5);
    EXPECT_EQ(a[1], -2.25);
    EXPECT_TRUE(des.exhausted());
}

TEST(Serializer, TruncatedPayloadThrows)
{
    Serializer ser;
    ser(std::uint64_t{7});
    ser(std::string("payload"));
    std::string bytes = ser.take();

    // Every proper prefix must reject cleanly, never read out of bounds.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        Deserializer des(bytes.data(), cut);
        std::uint64_t u = 0;
        std::string s;
        EXPECT_THROW(
            {
                des(u);
                des(s);
            },
            CheckpointError)
            << "prefix of " << cut << " bytes";
    }
}

TEST(Serializer, ImplausibleElementCountRejected)
{
    // A vector header claiming more elements than remaining bytes is
    // corruption; it must throw instead of attempting a giant resize.
    Serializer ser;
    ser(std::uint64_t{0xffffffffffffULL});
    Deserializer des(ser.buffer());
    std::vector<std::uint64_t> v;
    EXPECT_THROW(des(v), CheckpointError);
}

TEST(CheckpointEnvelope, RoundTripPreservesEverything)
{
    Checkpoint ck;
    ck.configFingerprint = 0x1122334455667788ULL;
    ck.warmupBoundary = true;
    ck.at = 50'000;
    ck.payload = std::string("\x00\x01\x02machine state\xff", 16);

    Checkpoint back = decodeCheckpoint(encodeCheckpoint(ck));
    EXPECT_EQ(back.configFingerprint, ck.configFingerprint);
    EXPECT_EQ(back.warmupBoundary, ck.warmupBoundary);
    EXPECT_EQ(back.at, ck.at);
    EXPECT_EQ(back.payload, ck.payload);
}

TEST(CheckpointEnvelope, RejectsDamage)
{
    Checkpoint ck;
    ck.configFingerprint = 42;
    ck.at = 1000;
    ck.payload = "state bytes that the crc covers";
    const std::string good = encodeCheckpoint(ck);

    // Bad magic.
    std::string bad = good;
    bad[0] = 'X';
    EXPECT_THROW(decodeCheckpoint(bad), CheckpointError);

    // Unsupported version.
    bad = good;
    bad[8] = static_cast<char>(0x7f);
    EXPECT_THROW(decodeCheckpoint(bad), CheckpointError);

    // A flipped payload byte breaks the CRC.
    bad = good;
    bad[bad.size() - 3] ^= 0x01;
    EXPECT_THROW(decodeCheckpoint(bad), CheckpointError);

    // Truncation anywhere.
    for (std::size_t cut : {std::size_t{0}, std::size_t{7}, good.size() / 2,
                            good.size() - 1})
        EXPECT_THROW(decodeCheckpoint(good.substr(0, cut)), CheckpointError);

    // Trailing garbage.
    EXPECT_THROW(decodeCheckpoint(good + "x"), CheckpointError);

    // The undamaged original still decodes.
    EXPECT_NO_THROW(decodeCheckpoint(good));
}

TEST(CheckpointEnvelope, FileRoundTripAndMissingFile)
{
    Checkpoint ck;
    ck.configFingerprint = 7;
    ck.at = 123;
    ck.payload = "file payload";
    std::string path =
        testing::TempDir() + "smtavf_ckpt_file_roundtrip.ckpt";
    saveCheckpointFile(ck, path);
    Checkpoint back = loadCheckpointFile(path);
    EXPECT_EQ(back.payload, ck.payload);
    EXPECT_EQ(back.at, ck.at);
    std::remove(path.c_str());

    EXPECT_THROW(loadCheckpointFile(path + ".does-not-exist"),
                 CheckpointError);
}

/** Shared run parameters: small but long enough to stress every stage. */
constexpr std::uint64_t kBudget = 60'000;
constexpr std::uint64_t kHalf = 30'000;

Experiment
testExperiment(const char *mix_name, FetchPolicyKind policy)
{
    return makeExperiment(findMix(mix_name), policy, kBudget);
}

TEST(CheckpointRestore, RestoreThenRunMatchesContinuedRun)
{
    Experiment e = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);

    // Run A captures mid-flight and keeps going to the full budget.
    Checkpoint ck;
    RunControls rc;
    rc.checkpointAt = kHalf;
    rc.checkpointCapture = &ck;
    Simulator a(e.cfg, e.mix);
    SimResult ra = a.run(kBudget, rc);
    ASSERT_FALSE(ck.empty());
    EXPECT_FALSE(ck.warmupBoundary);
    EXPECT_EQ(ck.at, kHalf);

    // Run B adopts the capture and simulates only the remainder.
    Simulator b(e.cfg, e.mix);
    b.restore(ck);
    ASSERT_GT(b.restoredCommitted(), 0u);
    ASSERT_GE(kBudget, b.restoredCommitted());
    SimResult rb = b.run(kBudget - b.restoredCommitted());

    // Bit-identical on the journal wire format — every double compared
    // down to the last mantissa bit.
    std::uint64_t fp = experimentFingerprint(e);
    EXPECT_EQ(serializeRun(fp, ra), serializeRun(fp, rb));
}

TEST(CheckpointRestore, WarmupInRunEqualsCaptureRestore)
{
    Experiment e = testExperiment("2ctx-cpu-A", FetchPolicyKind::Icount);

    RunControls rc;
    rc.warmup = kHalf;
    Simulator a(e.cfg, e.mix);
    SimResult ra = a.run(kBudget, rc);

    Simulator capture(e.cfg, e.mix);
    Checkpoint ck = capture.captureWarmupCheckpoint(kHalf);
    EXPECT_TRUE(ck.warmupBoundary);
    EXPECT_EQ(ck.at, kHalf);

    Simulator b(e.cfg, e.mix);
    b.restore(ck);
    SimResult rb = b.run(kBudget);

    std::uint64_t fp = experimentFingerprint(e);
    EXPECT_EQ(serializeRun(fp, ra), serializeRun(fp, rb));
}

TEST(CheckpointRestore, FingerprintMismatchRejected)
{
    Experiment e = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);
    Simulator capture(e.cfg, e.mix);
    Checkpoint ck = capture.captureWarmupCheckpoint(kHalf);

    // Wrong seed.
    {
        MachineConfig cfg = e.cfg;
        cfg.seed = e.cfg.seed + 1;
        Simulator sim(cfg, e.mix);
        EXPECT_THROW(sim.restore(ck), CheckpointError);
    }
    // Wrong workload.
    {
        const auto &other = findMix("2ctx-cpu-A");
        Simulator sim(table1Config(other.contexts), other);
        EXPECT_THROW(sim.restore(ck), CheckpointError);
    }
    // Wrong fetch policy (machine semantics).
    {
        MachineConfig cfg = e.cfg;
        cfg.fetchPolicy = FetchPolicyKind::Flush;
        Simulator sim(cfg, e.mix);
        EXPECT_THROW(sim.restore(ck), CheckpointError);
    }
    // Matching config restores fine.
    {
        Simulator sim(e.cfg, e.mix);
        EXPECT_NO_THROW(sim.restore(ck));
    }
}

TEST(CheckpointRestore, WarmupCheckpointIsProtectionAgnostic)
{
    // One warmup capture must serve every candidate protection scheme:
    // that is what lets the explorer share a single warmup. A *mid-run*
    // checkpoint, by contrast, carries accumulated protection-split
    // tallies and must reject a different assignment.
    Experiment e = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);

    Simulator capture(e.cfg, e.mix);
    Checkpoint warm = capture.captureWarmupCheckpoint(kHalf);

    MachineConfig protected_cfg = e.cfg;
    protected_cfg.protection =
        uniformProtection(ProtScheme::Secded, 10'000);
    {
        Simulator sim(protected_cfg, e.mix);
        EXPECT_NO_THROW(sim.restore(warm));
    }

    Checkpoint mid;
    RunControls rc;
    rc.checkpointAt = kHalf;
    rc.checkpointCapture = &mid;
    Simulator a(e.cfg, e.mix);
    a.run(kBudget, rc);
    {
        Simulator sim(protected_cfg, e.mix);
        EXPECT_THROW(sim.restore(mid), CheckpointError);
    }
}

TEST(CheckpointRestore, PRatWarmupCheckpointBindsProtection)
{
    // The PRAT counterpart of WarmupCheckpointIsProtectionAgnostic: the
    // weight PRAT gates on reads the protection assignment, so under
    // PRAT the assignment is timing-affecting and even a *warmup*
    // checkpoint folds it into the fingerprint. A core with a different
    // assignment must refuse the restore that an ICOUNT core accepts.
    Experiment e = testExperiment("2ctx-mix-A", FetchPolicyKind::PRat);
    e.cfg.pratCap = 12;
    std::string err;
    ASSERT_TRUE(parseAssignment("iq=secded,rob=secded", e.cfg.protection,
                                err))
        << err;

    Simulator capture(e.cfg, e.mix);
    Checkpoint warm = capture.captureWarmupCheckpoint(kHalf);
    EXPECT_TRUE(warm.warmupBoundary);

    // Same machine, nothing protected: rejected.
    {
        MachineConfig cfg = e.cfg;
        cfg.protection = ProtectionConfig{};
        Simulator sim(cfg, e.mix);
        EXPECT_THROW(sim.restore(warm), CheckpointError);
    }
    // Same machine, weaker scheme on the same structures: rejected.
    {
        MachineConfig cfg = e.cfg;
        ASSERT_TRUE(
            parseAssignment("iq=parity,rob=parity", cfg.protection, err))
            << err;
        Simulator sim(cfg, e.mix);
        EXPECT_THROW(sim.restore(warm), CheckpointError);
    }
    // Identical assignment restores fine.
    {
        Simulator sim(e.cfg, e.mix);
        EXPECT_NO_THROW(sim.restore(warm));
    }
}

/** Scripted PolicyContext driving a PRatPolicy off-core. */
class PRatScriptContext : public PolicyContext
{
  public:
    unsigned numThreads() const override { return 2; }
    unsigned inFlightCount(ThreadId tid) const override { return cp[tid]; }
    unsigned
    inFlightCorrectPath(ThreadId tid) const override
    {
        return cp[tid];
    }
    unsigned outstandingL1D(ThreadId) const override { return 0; }
    unsigned outstandingL2D(ThreadId) const override { return 0; }
    void flushAfter(ThreadId, SeqNum) override {}
    const ProtectionConfig *
    protectionConfig() const override
    {
        return &protection;
    }
    const AvfLedger *avfLedger() const override { return ledger; }

    unsigned cp[maxContexts]{};
    ProtectionConfig protection;
    const AvfLedger *ledger = nullptr;
};

TEST(Serializer, PRatAccumulatorsRoundTrip)
{
    // The measured corrections, the absolute refresh schedule and the
    // duty-cycle tally are PRAT's only mutable state beyond what the
    // restoring core re-derives; a policy restored mid-epoch must keep
    // gating exactly like the one that saved.
    AvfLedger ledger(2);
    ledger.setStructureBits(HwStruct::RegFile, 1u << 16);
    // Unprotected residency: residual == ACE, so thread 0's measured
    // correction snaps to the full 256/256 at the first refresh while
    // thread 1 (no intervals) stays at the floor of 1.
    ledger.addInterval(HwStruct::RegFile, 0, 64, 0, 1000, true);

    PRatScriptContext ctx;
    ctx.ledger = &ledger;

    PRatPolicy a(ctx, 12, 16);
    for (Cycle now = 1; now <= 64; ++now) {
        ctx.cp[0] = static_cast<unsigned>((now * 7) % 50);
        ctx.cp[1] = static_cast<unsigned>((now * 3) % 20);
        a.fetchOrder(now);
    }
    ASSERT_EQ(a.corr256(0), 256u); // the refresh actually landed
    ASSERT_EQ(a.corr256(1), 1u);
    ASSERT_GT(a.throttledThreadCycles(), 0u);

    Serializer ser;
    a.saveState(ser);

    PRatPolicy b(ctx, 12, 16);
    Deserializer des(ser.buffer());
    b.loadState(des);
    EXPECT_TRUE(des.exhausted());

    EXPECT_EQ(b.corr256(0), a.corr256(0));
    EXPECT_EQ(b.corr256(1), a.corr256(1));
    EXPECT_EQ(b.throttledThreadCycles(), a.throttledThreadCycles());

    // Continued decisions are bit-identical, across further refreshes.
    for (Cycle now = 65; now <= 192; ++now) {
        ctx.cp[0] = static_cast<unsigned>((now * 11) % 60);
        ctx.cp[1] = static_cast<unsigned>((now * 5) % 40);
        EXPECT_EQ(a.fetchOrder(now), b.fetchOrder(now)) << "cycle " << now;
    }
}

TEST(CheckpointRestore, CorruptPayloadRejectedOnRestore)
{
    Experiment e = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);
    Simulator capture(e.cfg, e.mix);
    Checkpoint ck = capture.captureWarmupCheckpoint(kHalf);

    // Truncated payload (past the envelope — the Deserializer's checks).
    Checkpoint cut = ck;
    cut.payload.resize(cut.payload.size() / 2);
    Simulator sim(e.cfg, e.mix);
    EXPECT_THROW(sim.restore(cut), CheckpointError);

    // Empty checkpoint.
    Simulator sim2(e.cfg, e.mix);
    EXPECT_THROW(sim2.restore(Checkpoint{}), CheckpointError);
}

TEST(CheckpointRestore, GuardsRejectBadControls)
{
    LoggingThrows guard;
    Experiment e = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);

    // Checkpoint trigger at/past the end of the run.
    {
        Simulator sim(e.cfg, e.mix);
        RunControls rc;
        rc.checkpointAt = kBudget + 1;
        Checkpoint ck;
        rc.checkpointCapture = &ck;
        EXPECT_THROW(sim.run(kBudget, rc), SimError);
    }
    // A destination without a trigger is a mistake, not a no-op.
    {
        Simulator sim(e.cfg, e.mix);
        RunControls rc;
        rc.checkpointOut = "/tmp/never-written.ckpt";
        EXPECT_THROW(sim.run(kBudget, rc), SimError);
    }
    // Warmup after restore: the boundary is already fixed.
    {
        Simulator capture(e.cfg, e.mix);
        Checkpoint ck = capture.captureWarmupCheckpoint(kHalf);
        Simulator sim(e.cfg, e.mix);
        sim.restore(ck);
        RunControls rc;
        rc.warmup = 1000;
        EXPECT_THROW(sim.run(kBudget, rc), SimError);
    }
}

TEST(AvfIntervalSeries, RowsConserveLedgerTotals)
{
    Experiment e = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);
    Simulator sim(e.cfg, e.mix);
    RunControls rc;
    rc.avfInterval = 10'000;
    SimResult r = sim.run(kBudget, rc);
    ASSERT_TRUE(r.avfIntervals);
    const auto &rows = r.avfIntervals->data();
    ASSERT_FALSE(rows.empty());

    // Row boundaries tile the run: contiguous, monotonic, ending at the
    // final committed count.
    EXPECT_EQ(rows.front().startInstr, 0u);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].startInstr, rows[i - 1].endInstr);
        EXPECT_GE(rows[i].endCycle, rows[i].startCycle);
    }
    EXPECT_EQ(rows.back().endInstr, r.totalCommitted);

    // Conservation: summed per-row ACE deltas equal the ledger's final
    // tallies exactly (integer bit-cycles, so equality is exact).
    const AvfLedger &ledger = sim.ledger();
    for (std::size_t s = 0; s < numHwStructs; ++s) {
        auto hs = static_cast<HwStruct>(s);
        std::uint64_t ace = 0, residual = 0;
        for (const auto &row : rows) {
            ace += row.aceDelta[s];
            residual += row.residualDelta[s];
        }
        EXPECT_EQ(ace, ledger.aceBitCycles(hs)) << hwStructName(hs);
        EXPECT_EQ(residual, ledger.residualAceBitCycles(hs))
            << hwStructName(hs);
    }

    // The CSV dump carries one line per row plus the header.
    std::string csv = r.avfIntervals->csv();
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, rows.size() + 1);
}

TEST(AvfIntervalSeries, RestoredRunUsesAbsoluteCoordinates)
{
    Experiment e = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);
    Simulator capture(e.cfg, e.mix);
    Checkpoint ck = capture.captureWarmupCheckpoint(kHalf);

    Simulator sim(e.cfg, e.mix);
    sim.restore(ck);
    RunControls rc;
    rc.avfInterval = 10'000;
    SimResult r = sim.run(kBudget, rc);
    ASSERT_TRUE(r.avfIntervals);
    const auto &rows = r.avfIntervals->data();
    ASSERT_FALSE(rows.empty());
    // Window boundaries are absolute committed-instruction coordinates:
    // a restored run's series starts where the checkpoint left off, so
    // it lines up with the original run's axis instead of re-zeroing.
    EXPECT_EQ(rows.front().startInstr, sim.restoredCommitted());
    EXPECT_EQ(rows.back().endInstr,
              sim.restoredCommitted() + r.totalCommitted);
}

TEST(SharedWarmupCampaign, ThreadModeMatchesPerRunWarmup)
{
    // Two experiments share one warmup group (same cfg/mix/seed/warmup);
    // a third differs by seed and must get its own group.
    std::vector<Experiment> exps;
    Experiment base = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);
    base.warmup = 20'000;
    base.budget = 30'000;
    exps.push_back(base);
    Experiment prot = base;
    prot.cfg.protection = uniformProtection(ProtScheme::Parity, 10'000);
    prot.label += "/parity";
    exps.push_back(prot);
    Experiment other = base;
    other.cfg.seed = base.cfg.seed + 99;
    other.label += "/seed";
    exps.push_back(other);

    CampaignRunner pool(2);
    CampaignOptions plain;
    auto ref = runTolerant(pool, exps, plain);
    ASSERT_TRUE(ref.allOk());

    CampaignOptions shared;
    shared.sharedWarmup = true;
    auto got = runTolerant(pool, exps, shared);
    ASSERT_TRUE(got.allOk());

    for (std::size_t i = 0; i < exps.size(); ++i) {
        std::uint64_t fp = experimentFingerprint(exps[i]);
        EXPECT_EQ(serializeRun(fp, ref.outcomes[i].result),
                  serializeRun(fp, got.outcomes[i].result))
            << exps[i].label;
    }
}

TEST(SharedWarmupCampaign, SharingSimulatesFewerInstructions)
{
    std::vector<Experiment> exps;
    Experiment base = testExperiment("2ctx-mix-A", FetchPolicyKind::Icount);
    base.warmup = 20'000;
    base.budget = 20'000;
    for (int i = 0; i < 3; ++i) {
        Experiment e = base;
        e.label += std::to_string(i);
        exps.push_back(e); // identical warmup prefix x3
    }

    CampaignRunner pool(2);
    auto &counter = simulatedInstructionCounter();

    counter.store(0);
    CampaignOptions plain;
    ASSERT_TRUE(runTolerant(pool, exps, plain).allOk());
    std::uint64_t unshared = counter.load();

    counter.store(0);
    CampaignOptions shared;
    shared.sharedWarmup = true;
    ASSERT_TRUE(runTolerant(pool, exps, shared).allOk());
    std::uint64_t shared_count = counter.load();

    // Three warmups vs one: sharing must save roughly two warmups' worth.
    EXPECT_LT(shared_count, unshared);
    EXPECT_LE(shared_count + 2 * base.warmup,
              unshared + base.warmup / 10); // generous slack for drain
}

} // namespace
} // namespace smtavf
