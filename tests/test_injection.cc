/**
 * @file
 * Unit and integration tests for the fault-injection validation engine.
 */

#include <gtest/gtest.h>

#include "avf/injection.hh"
#include "sim/experiment.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

InstPtr
rec(ThreadId tid, OpClass op, RegIndex dest, RegIndex src1 = invalidReg,
    RegIndex src2 = invalidReg, Addr addr = 0, std::uint8_t size = 0)
{
    auto in = std::make_shared<DynInstr>();
    in->tid = tid;
    in->op = op;
    in->destReg = dest;
    in->srcReg1 = src1;
    in->srcReg2 = src2;
    in->memAddr = addr;
    in->memSize = size;
    return in;
}

CommitTrace
makeTrace(std::initializer_list<InstPtr> instrs)
{
    CommitTrace t;
    for (const auto &in : instrs)
        t.append(in);
    t.finalize();
    return t;
}

TEST(InjectionUnit, ImmediateOverwriteMasks)
{
    // r5 = ...; r5 = const (no read): the fault dies at the overwrite.
    auto t = makeTrace({
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(0, OpClass::IntAlu, 5, 1, 2),
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Masked);
}

TEST(InjectionUnit, TaintReachingBranchCorrupts)
{
    auto t = makeTrace({
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(0, OpClass::BranchCond, invalidReg, 5, 2),
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Corrupted);
}

TEST(InjectionUnit, TaintedStoreAddressCorrupts)
{
    auto t = makeTrace({
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(0, OpClass::Store, invalidReg, 5, 7, 0x100, 4),
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Corrupted);
}

TEST(InjectionUnit, PropagationThroughMemoryRoundTrip)
{
    // r5 tainted -> store [0x100] <- r5 -> r5 overwritten -> load r6 from
    // [0x100] -> branch on r6: corruption via memory.
    auto t = makeTrace({
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(0, OpClass::Store, invalidReg, 1, 5, 0x100, 4),
        rec(0, OpClass::IntAlu, 5, 1, 2), // kills the register taint
        rec(0, OpClass::Load, 6, 1, invalidReg, 0x100, 4),
        rec(0, OpClass::BranchCond, invalidReg, 6, 1),
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Corrupted);
}

TEST(InjectionUnit, MemoryOverwriteKillsTaint)
{
    auto t = makeTrace({
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(0, OpClass::Store, invalidReg, 1, 5, 0x100, 4), // taints mem
        rec(0, OpClass::IntAlu, 5, 1, 2),                   // kills reg
        rec(0, OpClass::Store, invalidReg, 1, 7, 0x100, 4), // clean store
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Masked);
}

TEST(InjectionUnit, TransitiveDeadChainMasks)
{
    // r5 -> r6 (uses r5) -> both overwritten unread: FDD would call only
    // the *last* writes dead, but injection sees the whole chain masked.
    auto t = makeTrace({
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(0, OpClass::IntAlu, 6, 5, 1),
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(0, OpClass::IntAlu, 6, 1, 2),
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Masked);
}

TEST(InjectionUnit, SurvivingTaintAtTraceEndCorrupts)
{
    auto t = makeTrace({
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(0, OpClass::IntAlu, 7, 1, 2),
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Corrupted);
}

TEST(InjectionUnit, OtherThreadsDoNotPropagate)
{
    auto t = makeTrace({
        rec(0, OpClass::IntAlu, 5, 1, 2),
        rec(1, OpClass::BranchCond, invalidReg, 5, 2), // other thread
        rec(0, OpClass::IntAlu, 5, 1, 2),              // overwrite
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Masked);
}

TEST(InjectionUnit, NonWritingOriginIsSkipped)
{
    auto t = makeTrace({
        rec(0, OpClass::Store, invalidReg, 1, 2, 0x100, 4),
    });
    InjectionCampaign c(t);
    EXPECT_EQ(c.injectAt(0), InjectionOutcome::Skipped);
}

TEST(InjectionUnit, UnfinalizedTracePanics)
{
    ThrowGuard guard;
    CommitTrace t;
    t.append(rec(0, OpClass::IntAlu, 5, 1, 2));
    EXPECT_THROW(t.records(), SimError);
}

TEST(InjectionCampaignTest, DeterministicForSameSeed)
{
    auto cfg = table1Config(2);
    cfg.recordCommitTrace = true;
    auto r = runMix(cfg, findMix("2ctx-mix-A"), 15000);
    ASSERT_NE(r.commitTrace, nullptr);

    InjectionCampaign c(*r.commitTrace);
    auto a = c.run(500, 42);
    auto b = c.run(500, 42);
    EXPECT_EQ(a.corrupted, b.corrupted);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.trials, 500u);
}

TEST(InjectionCampaignTest, MaskingUpperBoundsFirstLevelDeadness)
{
    // Every FDD-dead instruction masks under injection, so the injection
    // masked rate must be at least the FDD dead fraction (the gap is the
    // transitive deadness FDD cannot see).
    auto cfg = table1Config(2);
    cfg.recordCommitTrace = true;
    auto r = runMix(cfg, findMix("2ctx-mix-A"), 20000);
    ASSERT_NE(r.commitTrace, nullptr);

    InjectionCampaign c(*r.commitTrace);
    auto res = c.run(2000, 7);
    double fdd = r.stats.get("deadCode.fraction");
    EXPECT_GE(res.maskedRate() + 0.05, fdd);
    EXPECT_GT(res.maskedRate(), 0.0);
    EXPECT_GT(res.corruptionRate(), 0.3)
        << "most live values should matter";
}

TEST(InjectionCampaignTest, FddDeadOriginsAlwaysMask)
{
    auto cfg = table1Config(2);
    cfg.recordCommitTrace = true;
    auto r = runMix(cfg, findMix("2ctx-cpu-A"), 15000);
    ASSERT_NE(r.commitTrace, nullptr);

    InjectionCampaign c(*r.commitTrace);
    const auto &recs = r.commitTrace->records();
    unsigned checked = 0;
    for (std::size_t i = 0; i < recs.size() && checked < 300; ++i) {
        if (!recs[i].destDead)
            continue;
        ++checked;
        EXPECT_NE(c.injectAt(i), InjectionOutcome::Corrupted)
            << "record " << i << " is FDD-dead but corrupted";
    }
    EXPECT_GT(checked, 50u);
}

TEST(InjectionCampaignTest, TraceDisabledByDefault)
{
    auto r = runMix(findMix("2ctx-mix-A"), FetchPolicyKind::Icount, 5000);
    EXPECT_EQ(r.commitTrace, nullptr);
}

} // namespace
} // namespace smtavf
