/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "base/stats.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

TEST(Counter, StartsAtZeroAndCounts)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Average, MeanAndSum)
{
    Average a;
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.sum(), 9.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(HistogramTest, BucketsFill)
{
    Histogram h(10.0, 5); // buckets of width 2
    h.sample(0.5);
    h.sample(1.9);
    h.sample(2.0);
    h.sample(9.9);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(HistogramTest, OverflowLandsInLastBucket)
{
    Histogram h(10.0, 5);
    h.sample(100.0);
    h.sample(10.0);
    EXPECT_EQ(h.bucketCount(4), 2u);
}

TEST(HistogramTest, NegativeClampsToFirstBucket)
{
    Histogram h(10.0, 5);
    h.sample(-3.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(HistogramTest, MeanTracksRawValues)
{
    Histogram h(10.0, 5);
    h.sample(2.0);
    h.sample(4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramTest, RejectsBadGeometry)
{
    ThrowGuard guard;
    EXPECT_THROW(Histogram(0.0, 5), SimError);
    EXPECT_THROW(Histogram(10.0, 0), SimError);
}

TEST(StatGroupTest, SetGetHas)
{
    StatGroup g;
    EXPECT_FALSE(g.has("x"));
    g.set("x", 1.5);
    EXPECT_TRUE(g.has("x"));
    EXPECT_DOUBLE_EQ(g.get("x"), 1.5);
    g.set("x", 2.5); // overwrite
    EXPECT_DOUBLE_EQ(g.get("x"), 2.5);
}

TEST(StatGroupTest, UnknownNameIsFatal)
{
    ThrowGuard guard;
    StatGroup g;
    EXPECT_THROW(g.get("missing"), SimError);
}

TEST(StatGroupTest, AllIsSortedByName)
{
    StatGroup g;
    g.set("b", 2);
    g.set("a", 1);
    auto it = g.all().begin();
    EXPECT_EQ(it->first, "a");
    ++it;
    EXPECT_EQ(it->first, "b");
}

} // namespace
} // namespace smtavf
