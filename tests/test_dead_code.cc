/**
 * @file
 * Unit tests for deferred first-level dynamic dead-code classification.
 */

#include <gtest/gtest.h>

#include "avf/dead_code.hh"
#include "test_util.hh"

namespace smtavf
{
namespace
{

InstPtr
makeInstr(ThreadId tid, RegIndex dest, RegIndex src1 = invalidReg,
          RegIndex src2 = invalidReg)
{
    auto in = std::make_shared<DynInstr>();
    in->tid = tid;
    in->op = OpClass::IntAlu;
    in->destReg = dest;
    in->srcReg1 = src1;
    in->srcReg2 = src2;
    return in;
}

class DeadCodeTest : public ::testing::Test
{
  protected:
    DeadCodeTest() : ledger(2), analyzer(2, ledger, true)
    {
        ledger.setStructureBits(HwStruct::ROB, 1000);
    }

    void
    attachInterval(const InstPtr &in, Cycle start, Cycle end)
    {
        in->pending.push_back({HwStruct::ROB, 10, start, end});
    }

    AvfLedger ledger;
    DeadCodeAnalyzer analyzer;
};

TEST_F(DeadCodeTest, OverwriteWithoutReadIsDead)
{
    auto a = makeInstr(0, 5);
    attachInterval(a, 0, 10);
    EXPECT_FALSE(analyzer.onCommit(a));

    auto b = makeInstr(0, 5); // overwrites r5, nobody read it
    EXPECT_TRUE(analyzer.onCommit(b));
    EXPECT_TRUE(a->destDead);
    EXPECT_EQ(analyzer.deadInstructions(), 1u);
    // a's interval resolved un-ACE.
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::ROB), 100u);
}

TEST_F(DeadCodeTest, ReadBeforeOverwriteIsLive)
{
    auto a = makeInstr(0, 5);
    attachInterval(a, 0, 10);
    analyzer.onCommit(a);

    auto reader = makeInstr(0, 6, 5);
    analyzer.onCommit(reader);
    EXPECT_FALSE(a->destDead);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 100u);

    auto b = makeInstr(0, 5);
    EXPECT_FALSE(analyzer.onCommit(b)) << "a was already resolved live";
}

TEST_F(DeadCodeTest, ReadAndRewriteSameRegisterIsLive)
{
    auto a = makeInstr(0, 5);
    attachInterval(a, 0, 10);
    analyzer.onCommit(a);

    // r5 = r5 + 1: reads the old value, then displaces it.
    auto b = makeInstr(0, 5, 5);
    EXPECT_FALSE(analyzer.onCommit(b));
    EXPECT_FALSE(a->destDead);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 100u);
}

TEST_F(DeadCodeTest, SecondSourceCountsAsRead)
{
    auto a = makeInstr(0, 5);
    analyzer.onCommit(a);
    auto reader = makeInstr(0, 7, 1, 5);
    analyzer.onCommit(reader);
    auto b = makeInstr(0, 5);
    EXPECT_FALSE(analyzer.onCommit(b));
}

TEST_F(DeadCodeTest, ThreadsAreIndependent)
{
    auto a0 = makeInstr(0, 5);
    auto a1 = makeInstr(1, 5);
    analyzer.onCommit(a0);
    analyzer.onCommit(a1);

    auto reader1 = makeInstr(1, 6, 5); // thread 1 reads its r5
    analyzer.onCommit(reader1);

    auto b0 = makeInstr(0, 5);
    EXPECT_TRUE(analyzer.onCommit(b0)) << "thread 0's r5 was never read";
    EXPECT_TRUE(a0->destDead);
    EXPECT_FALSE(a1->destDead);
}

TEST_F(DeadCodeTest, NonWritersResolveImmediately)
{
    auto store = makeInstr(0, invalidReg, 3, 4);
    store->op = OpClass::Store;
    attachInterval(store, 0, 20);
    analyzer.onCommit(store);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 200u);
    EXPECT_TRUE(store->pending.empty());
}

TEST_F(DeadCodeTest, NopsResolveUnAce)
{
    auto nop = makeInstr(0, invalidReg);
    nop->op = OpClass::Nop;
    attachInterval(nop, 0, 10);
    analyzer.onCommit(nop);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::ROB), 100u);
}

TEST_F(DeadCodeTest, SquashedInstructionsAreUnAce)
{
    auto a = makeInstr(0, 5);
    a->squashed = true;
    attachInterval(a, 0, 10);
    analyzer.onSquash(a);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::ROB), 100u);
}

TEST_F(DeadCodeTest, SquashOfCleanInstructionPanics)
{
    ThrowGuard guard;
    auto a = makeInstr(0, 5);
    EXPECT_THROW(analyzer.onSquash(a), SimError);
}

TEST_F(DeadCodeTest, FinishResolvesPendingAsLive)
{
    auto a = makeInstr(0, 5);
    attachInterval(a, 0, 10);
    analyzer.onCommit(a);
    analyzer.finish();
    EXPECT_FALSE(a->destDead);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 100u);
}

TEST_F(DeadCodeTest, DeadFractionTracksResolvedWriters)
{
    auto a = makeInstr(0, 5);
    analyzer.onCommit(a);
    auto b = makeInstr(0, 5); // kills a
    analyzer.onCommit(b);
    auto r = makeInstr(0, 6, 5); // proves b live; r itself stays pending
    analyzer.onCommit(r);
    EXPECT_EQ(analyzer.resolvedInstructions(), 2u);
    EXPECT_EQ(analyzer.deadInstructions(), 1u);
    EXPECT_NEAR(analyzer.deadFraction(), 0.5, 1e-12);
    analyzer.finish(); // r resolves live at end of run
    EXPECT_EQ(analyzer.resolvedInstructions(), 3u);
    EXPECT_NEAR(analyzer.deadFraction(), 1.0 / 3.0, 1e-12);
}

TEST(DeadCodeDisabled, EverythingResolvesLiveImmediately)
{
    AvfLedger ledger(1);
    ledger.setStructureBits(HwStruct::ROB, 1000);
    DeadCodeAnalyzer analyzer(1, ledger, false);

    auto a = makeInstr(0, 5);
    a->pending.push_back({HwStruct::ROB, 10, 0, 10});
    analyzer.onCommit(a);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 100u);

    auto b = makeInstr(0, 5); // would kill a with analysis enabled
    EXPECT_FALSE(analyzer.onCommit(b));
    EXPECT_FALSE(a->destDead);
    EXPECT_EQ(analyzer.deadInstructions(), 0u);
}

TEST(DeadCodeWrongPath, WrongPathResolvesUnAceEvenIfLive)
{
    AvfLedger ledger(1);
    ledger.setStructureBits(HwStruct::ROB, 1000);
    DeadCodeAnalyzer analyzer(1, ledger, true);

    auto a = makeInstr(0, 5);
    a->wrongPath = true;
    a->pending.push_back({HwStruct::ROB, 10, 0, 10});
    analyzer.onSquash(a);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::ROB), 100u);
}

TEST_F(DeadCodeTest, DeadFractionIsZeroBeforeAnyResolution)
{
    EXPECT_EQ(analyzer.resolvedInstructions(), 0u);
    EXPECT_DOUBLE_EQ(analyzer.deadFraction(), 0.0); // no divide-by-zero
}

TEST_F(DeadCodeTest, ResolveLiveForwardsAllPendingIntervals)
{
    auto a = makeInstr(0, 5);
    attachInterval(a, 0, 10);
    attachInterval(a, 20, 25); // a second residency (e.g. replay)
    analyzer.resolveLive(a);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 100u + 50u);
    EXPECT_TRUE(a->pending.empty());
}

TEST_F(DeadCodeTest, DeadIntervalsNeverReachProtectionTallies)
{
    // A dead instruction's interval resolves un-ACE; protection must not
    // count it as covered — only live ACE exposure can be covered.
    ledger.setProtection(uniformProtection(ProtScheme::Secded));
    auto a = makeInstr(0, 5);
    attachInterval(a, 0, 10);
    analyzer.onCommit(a);
    auto b = makeInstr(0, 5); // kills a
    EXPECT_TRUE(analyzer.onCommit(b));
    EXPECT_EQ(ledger.coveredAceBitCycles(HwStruct::ROB), 0u);
    EXPECT_EQ(ledger.residualAceBitCycles(HwStruct::ROB), 0u);
    EXPECT_EQ(ledger.unAceBitCycles(HwStruct::ROB), 100u);
}

TEST_F(DeadCodeTest, LiveIntervalsSplitIntoCoveredPlusResidual)
{
    ledger.setProtection(uniformProtection(ProtScheme::Parity));
    auto a = makeInstr(0, 5);
    attachInterval(a, 0, 10);
    analyzer.onCommit(a);
    auto reader = makeInstr(0, 6, 5); // proves a live
    analyzer.onCommit(reader);
    EXPECT_EQ(ledger.aceBitCycles(HwStruct::ROB), 100u);
    EXPECT_EQ(ledger.coveredAceBitCycles(HwStruct::ROB),
              100u * parityCoverage256 / 256);
    EXPECT_EQ(ledger.coveredAceBitCycles(HwStruct::ROB) +
                  ledger.residualAceBitCycles(HwStruct::ROB),
              ledger.aceBitCycles(HwStruct::ROB));
}

} // namespace
} // namespace smtavf
